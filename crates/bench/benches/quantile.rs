//! Criterion microbenches comparing exact percentile computation against
//! the P² streaming sketch (the `ablate-sketch` trade-off, in time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trimgame_numerics::quantile::{percentile, Interpolation};
use trimgame_numerics::rand_ext::seeded_rng;
use trimgame_numerics::sketch::P2Quantile;

fn batch(n: usize) -> Vec<f64> {
    use rand::Rng;
    let mut rng = seeded_rng(11);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

fn bench_quantile(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile");
    for n in [1_000usize, 10_000, 100_000] {
        let values = batch(n);
        group.bench_with_input(BenchmarkId::new("exact_sort", n), &values, |b, v| {
            b.iter(|| percentile(black_box(v), 0.9, Interpolation::Linear));
        });
        group.bench_with_input(BenchmarkId::new("p2_stream", n), &values, |b, v| {
            b.iter(|| {
                let mut sketch = P2Quantile::new(0.9);
                for &x in v {
                    sketch.insert(x);
                }
                sketch.estimate()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quantile);
criterion_main!(benches);
