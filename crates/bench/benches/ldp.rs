//! Criterion microbenches for the LDP substrate (Fig. 9's inner loops).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use trimgame_ldp::duchi::Duchi;
use trimgame_ldp::emf::EmFilter;
use trimgame_ldp::laplace::LaplaceMechanism;
use trimgame_ldp::mechanism::LdpMechanism;
use trimgame_ldp::piecewise::Piecewise;
use trimgame_numerics::rand_ext::seeded_rng;

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("privatize_10k");
    let values: Vec<f64> = (0..10_000)
        .map(|i| (i % 200) as f64 / 100.0 - 1.0)
        .collect();

    group.bench_function("duchi", |b| {
        let mech = Duchi::new(1.0);
        let mut rng = seeded_rng(1);
        b.iter(|| {
            values
                .iter()
                .map(|&x| mech.privatize(black_box(x), &mut rng))
                .sum::<f64>()
        });
    });
    group.bench_function("piecewise", |b| {
        let mech = Piecewise::new(1.0);
        let mut rng = seeded_rng(2);
        b.iter(|| {
            values
                .iter()
                .map(|&x| mech.privatize(black_box(x), &mut rng))
                .sum::<f64>()
        });
    });
    group.bench_function("laplace", |b| {
        let mech = LaplaceMechanism::new(1.0);
        let mut rng = seeded_rng(3);
        b.iter(|| {
            values
                .iter()
                .map(|&x| mech.privatize(black_box(x), &mut rng))
                .sum::<f64>()
        });
    });
    group.finish();

    c.bench_function("emf_filter_10k_reports", |b| {
        let mech = Piecewise::new(2.0);
        let mut rng = seeded_rng(4);
        let reports: Vec<f64> = values
            .iter()
            .map(|&x| mech.privatize(x, &mut rng))
            .collect();
        let emf = EmFilter::for_piecewise(&mech, 16, 32, 0.1);
        b.iter(|| emf.filter_mean(black_box(&reports)));
    });
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
