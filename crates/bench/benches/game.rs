//! Criterion microbenches for the game engine itself.

use criterion::{criterion_group, criterion_main, Criterion};
use trim_core::elastic::CoupledDynamics;
use trim_core::simulation::{run_game, run_table3_point, GameConfig, Scheme};

fn bench_game(c: &mut Criterion) {
    let pool: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64).collect();

    c.bench_function("run_game_elastic_20_rounds", |b| {
        let config = GameConfig::new(Scheme::Elastic(0.5));
        b.iter(|| run_game(&pool, &config));
    });

    c.bench_function("run_game_titfortat_20_rounds", |b| {
        let config = GameConfig::new(Scheme::TitForTat);
        b.iter(|| run_game(&pool, &config));
    });

    c.bench_function("coupled_dynamics_500_rounds", |b| {
        let d = CoupledDynamics::new(0.9, 0.5).expect("valid");
        b.iter(|| d.trajectory(500));
    });

    c.bench_function("table3_point_3_reps", |b| {
        b.iter(|| run_table3_point(&pool, 0.5, 0.5, 3, 7));
    });
}

criterion_group!(benches, bench_game);
criterion_main!(benches);
