//! The streaming collector service: sharded, batch-coalescing ingest.
//!
//! The engine's pull-based driver ([`trim_core::Engine`]) decides when
//! rounds happen. A production collector cannot: records arrive from
//! millions of users over bounded channels, late and out of order, and
//! a round plays when its batch *seals*. This module builds that front
//! half on the pieces the PRs before it laid down:
//!
//! ```text
//!  producer 0 ──bounded SPSC──▶ worker 0: Coalescer ─▶ EngineStepper ─▶ RangedBoard shard 0
//!  producer 1 ──bounded SPSC──▶ worker 1: Coalescer ─▶ EngineStepper ─▶ RangedBoard shard 1
//!      ⋮              ⋮                ⋮                                        ⋮
//!                                  (workers multiplexed over N ingest threads)
//! ```
//!
//! * **Channels** ([`trimgame_stream::channel`]): bounded, blocking
//!   producers with counted backpressure; workers drain in batches.
//! * **Coalescing** ([`trimgame_stream::coalesce`]): per-round batches
//!   seal on a count trigger or when the bounded reorder window ages
//!   them out; late-beyond-watermark records are counted and routed by
//!   [`LatePolicy`] (drop, or fold into the next round).
//! * **Stepping** ([`trim_core::EngineStepper`]): each sealed batch
//!   plays exactly one round through `Scenario::play_round` —
//!   *unchanged* — with the Fig. 3 information structure intact.
//! * **Recording** ([`trimgame_stream::board::RangedVenue`]): one board
//!   shard per ingest worker, each shard additionally sharded by round
//!   range so appends and incremental reads never touch cold history.
//!
//! **Determinism contract.** For a fixed seed, stream count and
//! coalescing knobs, every game output (engine finals, board contents,
//! coalesce statistics) is bit-identical regardless of how many ingest
//! threads multiplex the workers: each logical stream owns its channel
//! (SPSC order is the producer's deterministic order), its coalescer
//! and its stepper, so thread scheduling can only change *when* a
//! worker runs, never *what* it computes. Only the wall-clock figures
//! (throughput, latency histogram) vary across runs.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::Rng;
use trim_core::adversary::AttackPolicy;
use trim_core::strategy::ThresholdPolicy;
use trim_core::{EngineRun, EngineStepper, Scenario};
use trimgame_numerics::rand_ext::{derive_seed, seeded_rng};
use trimgame_stream::board::RangedVenue;
use trimgame_stream::channel::{bounded, Receiver};
use trimgame_stream::coalesce::{
    CoalesceStats, Coalescer, CoalescerConfig, IngestRecord, LatePolicy, RoundBatch,
};
use trimgame_stream::compact::{Compactor, TierConfig};
use trimgame_stream::fault::{FaultPlan, FaultSite, FaultSpec, FaultStatsSnapshot};
use trimgame_stream::recover::{ManifestWriter, RecoveryReport};

/// Stream tag for per-stream producer seeds.
const PRODUCER_STREAM: u64 = 0x494E_4745_5354; // "INGEST"

/// Stream tag for per-stream engine seeds.
const ENGINE_STREAM: u64 = 0x53_5445_5050; // "STEPP"

/// Fault-lane id offset for shard spill lanes, keeping them disjoint
/// from the producer lanes (which use the bare stream index).
const SPILL_LANE_BASE: u64 = 0x1000;

/// Knobs of one collector service run.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Logical ingest streams (one channel + coalescer + stepper +
    /// board shard each).
    pub streams: usize,
    /// OS ingest threads multiplexing the workers (0 = one per stream).
    pub threads: usize,
    /// Rounds each stream's producer emits.
    pub rounds: usize,
    /// Records per round (the coalescer's count trigger).
    pub batch: usize,
    /// Bounded channel capacity, in records.
    pub channel_cap: usize,
    /// Reorder window, in rounds (the coalescer's age trigger).
    pub reorder_window: usize,
    /// Producer-side disorder: records are released through a shuffle
    /// buffer of this size (0 = in-order arrival).
    pub jitter: usize,
    /// Every `late_every`-th record the producer additionally emits a
    /// stale duplicate stamped far behind the current round, to
    /// exercise the watermark path (0 = never).
    pub late_every: usize,
    /// Routing for late-beyond-watermark records.
    pub late_policy: LatePolicy,
    /// Round-range span of each board shard (rounds per sub-board).
    pub round_span: usize,
    /// Tiered-storage policy for the venue's cold spans: each worker
    /// runs a [`Compactor`] on its own shard between rounds, framing
    /// sealed cold spans and (under a resident budget) spilling them.
    /// `None` keeps every span hot and uncompacted.
    pub tier: Option<TierConfig>,
    /// Deterministic fault injection (producer stalls/disconnects, spill
    /// write errors and tears, read bit-flips). `None` runs fault-free;
    /// `expt collect` wires `TRIMGAME_FAULTS=<seed:rate>` in here.
    pub faults: Option<FaultSpec>,
    /// Master seed; every stream derives its own producer and engine
    /// seeds from it.
    pub seed: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self {
            streams: 8,
            threads: 0,
            rounds: 200,
            batch: 64,
            reorder_window: 4,
            channel_cap: 1024,
            jitter: 16,
            late_every: 97,
            late_policy: LatePolicy::Drop,
            round_span: 64,
            tier: None,
            faults: None,
            seed: 42,
        }
    }
}

impl CollectorConfig {
    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            self.streams
        } else {
            self.threads.min(self.streams)
        }
    }
}

/// Everything one logical stream needs: the scenario, both policies,
/// the main environment RNG (possibly already advanced by scenario
/// setup, e.g. an LDP calibration round), and the defender policy
/// sub-seed. Built per stream by the factory passed to
/// [`run_collector`], inside the ingest thread that owns the stream.
pub struct StreamSetup<S: Scenario> {
    pub scenario: S,
    pub defender: Box<dyn ThresholdPolicy>,
    pub adversary: Box<dyn AttackPolicy>,
    pub rng: StdRng,
    pub policy_seed: u64,
}

impl<S: Scenario> std::fmt::Debug for StreamSetup<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSetup")
            .field("policy_seed", &self.policy_seed)
            .finish_non_exhaustive()
    }
}

/// One stream's game outcome after its channel drained.
#[derive(Debug, Clone, Copy)]
pub struct StreamOutcome {
    /// Which logical stream.
    pub stream: usize,
    /// Engine aggregate (finals are bit-stable across thread counts).
    pub run: EngineRun,
    /// Coalescer counters for the stream.
    pub coalesce: CoalesceStats,
}

/// A lock-free (single-writer) log2-bucketed latency histogram. Each
/// ingest worker owns one and records nanoseconds from producer `send`
/// to worker dequeue — so time spent blocked on backpressure counts —
/// and the per-worker histograms merge by plain addition at report
/// time.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples with `floor(log2(ns)) == i`
    /// (bucket 0 also holds 0 ns).
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Adds another worker's histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound (in ns) of the bucket containing quantile `q`, or 0
    /// with no samples. Bucket resolution is a factor of two — ample
    /// for a tail-latency gate.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 2u64 << i };
            }
        }
        u64::MAX
    }
}

/// The full outcome of one collector service run.
#[derive(Debug)]
pub struct CollectorReport {
    /// The configuration that ran.
    pub cfg: CollectorConfig,
    /// Ingest threads actually used.
    pub threads: usize,
    /// Per-stream outcomes, ordered by stream index.
    pub streams: Vec<StreamOutcome>,
    /// The sharded venue holding every posted round record.
    pub venue: RangedVenue,
    /// Rounds played across all streams.
    pub rounds_played: usize,
    /// Records ingested across all streams (including late ones).
    pub records_ingested: u64,
    /// Times a producer blocked on a full channel.
    pub backpressure_events: u64,
    /// Merged per-record ingest latency histogram.
    pub latency: LatencyHistogram,
    /// Faults injected over the run (all zeros when `cfg.faults` is
    /// `None`).
    pub faults: FaultStatsSnapshot,
    /// Shards whose compactor ended the run demoted to freeze-only mode
    /// by a terminal spill-write failure.
    pub degraded_shards: usize,
    /// Wall-clock of the ingest phase.
    pub elapsed: Duration,
}

impl CollectorReport {
    /// Sustained throughput in rounds per second.
    #[must_use]
    pub fn rounds_per_sec(&self) -> f64 {
        self.rounds_played as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Sustained throughput in records per second.
    #[must_use]
    pub fn records_per_sec(&self) -> f64 {
        self.records_ingested as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Aggregate coalesce counters over all streams.
    #[must_use]
    pub fn coalesce_totals(&self) -> CoalesceStats {
        let mut total = CoalesceStats::default();
        for s in &self.streams {
            total.records += s.coalesce.records;
            total.late += s.coalesce.late;
            total.dropped += s.coalesce.dropped;
            total.folded += s.coalesce.folded;
            total.sealed_full += s.coalesce.sealed_full;
            total.sealed_by_age += s.coalesce.sealed_by_age;
            total.sealed_by_flush += s.coalesce.sealed_by_flush;
        }
        total
    }
}

/// A record in flight: the stamped observation plus its send time, so
/// the dequeue side can histogram true ingest latency (including any
/// backpressure wait, since the stamp is taken before `send`).
struct Stamped {
    rec: IngestRecord,
    sent: Instant,
}

/// One worker's state machine: channel tail, coalescer, stepper, shard.
struct Worker<S: Scenario> {
    stream: usize,
    rx: Receiver<Stamped>,
    coalescer: Coalescer,
    stepper: EngineStepper<S>,
    rng: StdRng,
    shard: trimgame_stream::board::RangedBoard,
    /// Tiered-storage maintenance for this worker's shard, run between
    /// rounds (after the sealed batches of a pump played) so appends are
    /// never blocked by compaction.
    compactor: Option<Compactor>,
    /// Recovery high-watermark: rounds at or below this are already
    /// durable in the shard's adopted spans, so a resumed run replays
    /// them through the engine without re-posting (0 = fresh run).
    watermark: usize,
    latency: LatencyHistogram,
    inbox: Vec<Stamped>,
    sealed: Vec<RoundBatch>,
    done: bool,
}

impl<S: Scenario> Worker<S> {
    /// Drains whatever the channel holds, coalesces it, and plays every
    /// round that sealed. Returns `true` while the stream is live.
    fn pump(&mut self) -> bool {
        if self.done {
            return false;
        }
        self.inbox.clear();
        let got = self.rx.try_recv_batch(&mut self.inbox, 4096);
        let now = Instant::now();
        for stamped in self.inbox.drain(..) {
            self.latency
                .record(now.saturating_duration_since(stamped.sent));
            self.coalescer.push(stamped.rec, &mut self.sealed);
        }
        if got == 0 && self.rx.is_disconnected() && self.rx.is_empty() {
            // Producer done and channel drained: the shutdown flush is
            // the time trigger — it seals the reorder-window stragglers.
            self.coalescer.flush(&mut self.sealed);
            self.done = true;
        }
        let played = !self.sealed.is_empty();
        self.play_sealed();
        if played {
            if let Some(compactor) = &self.compactor {
                compactor.run(&self.shard);
            }
        }
        !self.done
    }

    /// Plays one engine round per sealed batch, posting to this
    /// worker's shard. Batches arrive in strict round order, so the
    /// shard's O(1) `last_round` check is a pure monotonicity guard.
    fn play_sealed(&mut self) {
        for batch in self.sealed.drain(..) {
            let step = self.stepper.step(&mut self.rng);
            let mut record = step.to_record();
            // The board keys on the *logical* round the batch sealed
            // for, so venue reads line up with the ingest timeline even
            // when a fully-late round was dropped.
            record.round = batch.round.max(step.round);
            // Resume-by-replay: rounds at or below the recovered
            // watermark are already durable in adopted spans. The engine
            // still steps (its state must advance exactly as the
            // original run's did), but the post is suppressed.
            if record.round <= self.watermark {
                continue;
            }
            debug_assert!(
                self.shard.last_round().is_none_or(|r| r < record.round),
                "stream {}: non-monotone post at round {} (batch round {})",
                self.stream,
                record.round,
                batch.round,
            );
            self.shard.post(record);
        }
    }
}

/// Runs the collector service: `cfg.streams` producers feeding as many
/// logical ingest workers, multiplexed over `cfg.threads` OS threads,
/// each worker coalescing its stream into rounds and stepping its own
/// engine. `make(stream)` builds the per-stream game; it is called
/// inside the ingest thread that owns the stream.
///
/// # Panics
/// Panics on a degenerate configuration (zero streams, rounds, batch
/// or span).
pub fn run_collector<S, F>(cfg: &CollectorConfig, make: F) -> CollectorReport
where
    S: Scenario,
    F: Fn(usize) -> StreamSetup<S> + Sync,
{
    run_collector_inner(cfg, make, None)
}

/// Resumes a crashed run from a venue rebuilt by
/// [`RangedVenue::recover_from_spill`]: the deterministic producers
/// replay from round 1, every round steps through the engine exactly as
/// the original run's did, and posts at or below each shard's recovered
/// watermark are suppressed — the adopted cold spans plus the replayed
/// suffix converge to the bit-identical venue of an uninterrupted run.
/// Fresh manifests are written (adopted spans re-journaled first), so a
/// second crash recovers too.
///
/// # Panics
/// Panics if the recovered venue's geometry (shard count, round span)
/// disagrees with `cfg`, or on a degenerate configuration.
pub fn resume_collector<S, F>(
    cfg: &CollectorConfig,
    make: F,
    venue: RangedVenue,
    recovery: &RecoveryReport,
) -> CollectorReport
where
    S: Scenario,
    F: Fn(usize) -> StreamSetup<S> + Sync,
{
    run_collector_inner(cfg, make, Some((venue, recovery)))
}

fn run_collector_inner<S, F>(
    cfg: &CollectorConfig,
    make: F,
    resume: Option<(RangedVenue, &RecoveryReport)>,
) -> CollectorReport
where
    S: Scenario,
    F: Fn(usize) -> StreamSetup<S> + Sync,
{
    assert!(cfg.streams > 0, "need at least one stream");
    assert!(cfg.rounds > 0, "need at least one round");
    assert!(cfg.batch > 0, "need a positive batch");
    let threads = cfg.effective_threads();
    let backpressure = AtomicU64::new(0);
    let plan = cfg.faults.map(FaultPlan::new);
    let watermarks: Vec<usize> = resume
        .as_ref()
        .map_or_else(|| vec![0; cfg.streams], |(_, r)| r.watermarks(cfg.streams));
    let venue = match &resume {
        Some((venue, _)) => {
            assert_eq!(
                venue.collectors(),
                cfg.streams,
                "recovered venue shard count disagrees with the config"
            );
            assert_eq!(
                venue.collector(0).span(),
                cfg.round_span,
                "recovered venue round span disagrees with the config"
            );
            venue.clone()
        }
        None => RangedVenue::new(cfg.streams, cfg.round_span),
    };
    // Manifests are created eagerly for every shard (not lazily on first
    // spill): the geometry header must be durable before any span is,
    // and a resumed run re-journals its adopted spans so a second crash
    // still recovers them.
    let spill_dir = cfg.tier.as_ref().and_then(|t| t.spill_dir.clone());
    let manifests: Vec<Option<Arc<Mutex<ManifestWriter>>>> = (0..cfg.streams)
        .map(|stream| -> Option<Arc<Mutex<ManifestWriter>>> {
            let dir = spill_dir.as_ref()?;
            let mut writer = ManifestWriter::create(
                dir,
                &format!("s{stream}"),
                stream as u64,
                cfg.streams as u64,
                cfg.round_span as u64,
            )
            .ok()?;
            if let Some((_, recovery)) = &resume {
                if let Some(shard) = recovery.shards.iter().find(|r| r.shard == stream) {
                    for span in &shard.adopted {
                        writer.log_spilled(span).ok()?;
                    }
                }
            }
            Some(Arc::new(Mutex::new(writer)))
        })
        .collect();

    let mut channels = Vec::with_capacity(cfg.streams);
    let mut senders = Vec::with_capacity(cfg.streams);
    for _ in 0..cfg.streams {
        let (tx, rx) = bounded::<Stamped>(cfg.channel_cap.max(1));
        senders.push(tx);
        channels.push(rx);
    }

    let started = Instant::now();
    let mut outcomes: Vec<StreamOutcome> = Vec::with_capacity(cfg.streams);
    let mut latency = LatencyHistogram::new();
    let mut degraded_shards = 0usize;
    std::thread::scope(|scope| {
        // Producers: one per stream, emitting `rounds × batch` stamped
        // records through a seeded shuffle buffer (bounded disorder),
        // plus deliberate stale duplicates every `late_every` records.
        for (stream, tx) in senders.into_iter().enumerate() {
            let backpressure = &backpressure;
            let lane = plan.as_ref().map(|p| p.lane(stream as u64));
            scope.spawn(move || {
                let mut rng = seeded_rng(derive_seed(
                    derive_seed(cfg.seed, PRODUCER_STREAM),
                    stream as u64,
                ));
                let mut pending: Vec<IngestRecord> = Vec::with_capacity(cfg.jitter + 1);
                let mut emitted = 0u64;
                let send = |rec: IngestRecord| {
                    let stamped = Stamped {
                        rec,
                        sent: Instant::now(),
                    };
                    // A send only fails if the service dropped the
                    // receiver early (a panic elsewhere); nothing to do.
                    let _ = tx.send(stamped);
                };
                for round in 1..=cfg.rounds {
                    if let Some(lane) = &lane {
                        if lane.fire(FaultSite::ProducerStall) {
                            // A transient stall: the stream pauses, the
                            // coalescer's reorder window rides it out.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        if lane.fire(FaultSite::Disconnect) {
                            // The producer dies mid-stream: its shuffle
                            // buffer is lost with it and the channel
                            // disconnects when `tx` drops. The worker
                            // flushes what arrived and finishes cleanly.
                            return;
                        }
                    }
                    for _ in 0..cfg.batch {
                        let rec = IngestRecord {
                            round,
                            value: rng.gen::<f64>(),
                        };
                        emitted += 1;
                        if cfg.late_every > 0 && emitted.is_multiple_of(cfg.late_every as u64) {
                            // A stale duplicate well behind the window:
                            // exercises the watermark rule.
                            pending.push(IngestRecord {
                                round: round.saturating_sub(4 * cfg.reorder_window).max(1),
                                value: rec.value,
                            });
                        }
                        pending.push(rec);
                        while pending.len() > cfg.jitter {
                            let i = rng.gen_range(0..pending.len());
                            send(pending.swap_remove(i));
                        }
                    }
                }
                while !pending.is_empty() {
                    let i = rng.gen_range(0..pending.len());
                    send(pending.swap_remove(i));
                }
                backpressure.fetch_add(tx.backpressure_events(), Ordering::Relaxed);
            });
        }

        // Ingest threads: thread `t` owns workers `{w : w % threads == t}`.
        // The worker partition is a function of the *stream index*, not
        // of scheduling, so outputs cannot depend on the thread count.
        let mut handles = Vec::with_capacity(threads);
        let make = &make;
        let plan = &plan;
        let manifests = &manifests;
        let watermarks = &watermarks;
        let mut rx_slots: Vec<Option<Receiver<Stamped>>> = channels.into_iter().map(Some).collect();
        for t in 0..threads {
            let mut owned: Vec<(usize, Receiver<Stamped>)> = rx_slots
                .iter_mut()
                .enumerate()
                .filter(|(w, _)| w % threads == t)
                .map(|(w, slot)| (w, slot.take().expect("each worker owned once")))
                .collect();
            let venue = &venue;
            handles.push(scope.spawn(move || {
                let mut workers: Vec<Worker<S>> = owned
                    .drain(..)
                    .map(|(stream, rx)| {
                        let setup = make(stream);
                        let shard = venue.collector(stream);
                        if let Some(plan) = plan {
                            shard.arm_faults(plan.lane(SPILL_LANE_BASE + stream as u64));
                        }
                        Worker {
                            stream,
                            rx,
                            coalescer: Coalescer::new(CoalescerConfig {
                                batch: cfg.batch,
                                reorder_window: cfg.reorder_window,
                                late_policy: cfg.late_policy,
                            }),
                            stepper: EngineStepper::with_policy_seed(
                                setup.scenario,
                                setup.defender,
                                setup.adversary,
                                setup.policy_seed,
                            ),
                            rng: setup.rng,
                            shard,
                            compactor: cfg.tier.clone().map(|tier| {
                                let compactor = Compactor::new(tier, format!("s{stream}"));
                                match &manifests[stream] {
                                    Some(m) => compactor.with_manifest(m.clone()),
                                    None => compactor,
                                }
                            }),
                            watermark: watermarks[stream],
                            latency: LatencyHistogram::new(),
                            inbox: Vec::new(),
                            sealed: Vec::new(),
                            done: false,
                        }
                    })
                    .collect();
                loop {
                    let mut live = false;
                    for w in workers.iter_mut() {
                        live |= w.pump();
                    }
                    if !live {
                        break;
                    }
                    std::thread::yield_now();
                }
                workers
                    .into_iter()
                    .map(|w| {
                        (
                            StreamOutcome {
                                stream: w.stream,
                                run: w.stepper.finish(),
                                coalesce: w.coalescer.stats(),
                            },
                            w.latency,
                            w.compactor.as_ref().is_some_and(Compactor::is_degraded),
                        )
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (outcome, hist, is_degraded) in handle.join().expect("ingest thread panicked") {
                latency.merge(&hist);
                degraded_shards += usize::from(is_degraded);
                outcomes.push(outcome);
            }
        }
    });
    let elapsed = started.elapsed();
    outcomes.sort_by_key(|o| o.stream);

    let rounds_played = outcomes.iter().map(|o| o.run.rounds).sum();
    let records_ingested = outcomes.iter().map(|o| o.coalesce.records).sum();
    CollectorReport {
        cfg: cfg.clone(),
        threads,
        streams: outcomes,
        venue,
        rounds_played,
        records_ingested,
        backpressure_events: backpressure.load(Ordering::Relaxed),
        latency,
        faults: plan
            .as_ref()
            .map(|p| p.stats().snapshot())
            .unwrap_or_default(),
        degraded_shards,
        elapsed,
    }
}

/// The standard scalar-substrate stream factory: each stream plays the
/// Tit-for-tat game over the shared benchmark pool with stream-derived
/// seeds. Used by `expt collect`, the perf cases and the determinism
/// tests.
#[must_use]
pub fn scalar_stream_setup(
    pool: &[f64],
    rounds: usize,
    master_seed: u64,
    stream: usize,
) -> StreamSetup<trim_core::simulation::ScalarScenario> {
    use trim_core::simulation::{GameConfig, Scheme, POLICY_SEED_STREAM};
    let seed = derive_seed(derive_seed(master_seed, ENGINE_STREAM), stream as u64);
    let cfg = GameConfig {
        seed,
        rounds,
        ..GameConfig::new(Scheme::TitForTat)
    };
    let scenario = trim_core::simulation::ScalarScenario::lean(pool, &cfg);
    StreamSetup {
        scenario,
        defender: Box::new(cfg.scheme.defender(cfg.tth, 1.0, cfg.red)),
        adversary: Box::new(cfg.scheme.adversary(cfg.tth)),
        rng: seeded_rng(seed),
        policy_seed: derive_seed(seed, POLICY_SEED_STREAM),
    }
}

/// `expt collect`: runs the collector service on the substrate named by
/// `TRIMGAME_EQ_SUBSTRATE` (default scalar) and reports sustained
/// throughput, tail ingest latency, coalescing/backpressure counters
/// and the sharded-vs-single-stream ratio. `TRIMGAME_EQ_SMOKE=1`
/// shrinks the run for CI; `TRIMGAME_SWEEP_THREADS` caps the ingest
/// thread count (0/unset = one thread per stream).
///
/// # Panics
/// Panics on an unknown substrate name.
#[must_use]
pub fn collect_report() -> String {
    use crate::empirical::SubstrateKind;
    use std::fmt::Write as _;

    let kind = match std::env::var("TRIMGAME_EQ_SUBSTRATE") {
        Ok(name) => SubstrateKind::parse(&name)
            .unwrap_or_else(|| panic!("unknown substrate {name:?} (expected scalar|ml|ldp)")),
        Err(_) => SubstrateKind::Scalar,
    };
    let smoke = std::env::var("TRIMGAME_EQ_SMOKE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let threads = crate::sweep::env_workers();
    // Tiering is always on for the report run; `TRIMGAME_COLLECT_BUDGET`
    // (resident bytes for cold spans) and `TRIMGAME_COLLECT_SPILL` (a
    // directory for evicted frames) tighten it for bounded-memory runs.
    // The sharded run and the single-stream baseline spill into separate
    // subdirectories — their shard tags would otherwise collide.
    let spill_root = std::env::var("TRIMGAME_COLLECT_SPILL")
        .ok()
        .map(std::path::PathBuf::from);
    let tier = TierConfig {
        resident_budget: std::env::var("TRIMGAME_COLLECT_BUDGET")
            .ok()
            .and_then(|v| v.parse::<usize>().ok()),
        spill_dir: spill_root.as_ref().map(|p| p.join("sharded")),
        ..TierConfig::default()
    };
    let cfg = CollectorConfig {
        streams: 8,
        threads,
        rounds: if smoke { 40 } else { 400 },
        // Smoke runs are short; shrink the span so they still seal cold
        // spans and exercise the compact → evict → inflate path.
        round_span: if smoke { 8 } else { 64 },
        tier: Some(tier),
        // Chaos runs: TRIMGAME_FAULTS=<seed:rate> injects the seeded
        // fault schedule into the sharded run (the baseline and the
        // recovery reference stay clean).
        faults: FaultSpec::from_env(),
        ..CollectorConfig::default()
    };

    if std::env::var("TRIMGAME_COLLECT_RECOVER").is_ok_and(|v| v == "1") {
        let dir = spill_root
            .as_ref()
            .expect("TRIMGAME_COLLECT_RECOVER needs TRIMGAME_COLLECT_SPILL")
            .join("sharded");
        return recover_report(kind, &cfg, &dir);
    }

    let sharded = run_on(kind, &cfg);
    // The single-worker channel baseline: the same total round volume
    // through one stream, one channel, one coalescer, one shard.
    let single_cfg = CollectorConfig {
        streams: 1,
        threads: 1,
        rounds: cfg.rounds * cfg.streams,
        tier: Some(TierConfig {
            spill_dir: spill_root.as_ref().map(|p| p.join("single")),
            ..cfg.tier.clone().expect("report always tiers")
        }),
        faults: None,
        ..cfg.clone()
    };
    let single = run_on(kind, &single_cfg);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let ratio = sharded.rounds_per_sec() / single.rounds_per_sec().max(1e-9);
    let totals = sharded.coalesce_totals();
    let mut out = String::new();
    let _ = writeln!(out, "collector service — substrate {}", kind.name());
    let _ = writeln!(
        out,
        "  streams {}  ingest-threads {}  rounds/stream {}  batch {}  window {}  span {}  late-policy {:?}",
        cfg.streams,
        sharded.threads,
        cfg.rounds,
        cfg.batch,
        cfg.reorder_window,
        cfg.round_span,
        cfg.late_policy,
    );
    let _ = writeln!(
        out,
        "  sharded   : {:>10.0} rounds/s  ({:.2e} records/s, {} rounds in {:?})",
        sharded.rounds_per_sec(),
        sharded.records_per_sec(),
        sharded.rounds_played,
        sharded.elapsed,
    );
    let _ = writeln!(
        out,
        "  1-stream  : {:>10.0} rounds/s  ({} rounds in {:?})",
        single.rounds_per_sec(),
        single.rounds_played,
        single.elapsed,
    );
    let _ = writeln!(
        out,
        "  sharded / single-stream: {ratio:.2}x on {cores} core(s){}",
        if cores == 1 {
            " — single-core host: the >=3x multi-worker win needs real cores; \
             both paths time-slice one"
        } else {
            ""
        },
    );
    let _ = writeln!(
        out,
        "  ingest latency: p50 {} ns  p99 {} ns  ({} samples, log2 buckets)",
        sharded.latency.quantile_ns(0.50),
        sharded.latency.quantile_ns(0.99),
        sharded.latency.count(),
    );
    let _ = writeln!(
        out,
        "  coalesce: {} records, {} late ({} dropped / {} folded), sealed {} full / {} aged / {} flushed",
        totals.records,
        totals.late,
        totals.dropped,
        totals.folded,
        totals.sealed_full,
        totals.sealed_by_age,
        totals.sealed_by_flush,
    );
    let _ = writeln!(
        out,
        "  backpressure events: {}  board: {} records across {} shards (span {})",
        sharded.backpressure_events,
        sharded.venue.total_len(),
        cfg.streams,
        cfg.round_span,
    );
    let tier_cfg = cfg.tier.as_ref().expect("report always tiers");
    let t = sharded.venue.tier_stats().snapshot();
    let _ = writeln!(
        out,
        "  tiering: {} spans framed ({} records)  {} B raw -> {} B framed ({:.2}x)  {} inflations",
        t.frames_built,
        t.compacted_records,
        t.bytes_raw,
        t.bytes_framed,
        t.bytes_raw as f64 / (t.bytes_framed as f64).max(1.0),
        t.inflations,
    );
    let _ = writeln!(
        out,
        "  tiering: resident cold {} B over {} shards (budget {})  spills {} written / {} loaded  overruns {}",
        sharded.venue.resident_cold_bytes(tier_cfg.hot_tail_spans),
        cfg.streams,
        tier_cfg
            .resident_budget
            .map_or_else(|| "none".to_string(), |b| format!("{b} B/shard")),
        t.spill_writes,
        t.spill_loads,
        t.budget_overruns,
    );
    let f = sharded.faults;
    let _ = writeln!(
        out,
        "  faults: {} injected (stall {}, disconnect {}, spill-err {}, short-write {}, read-flip {})  \
         io-retries {}  write-failures {}  lost-reads {}  degraded shards {}",
        f.total(),
        f.stalls,
        f.disconnects,
        f.spill_write_errors,
        f.spill_short_writes,
        f.read_corruptions,
        t.io_retries,
        t.spill_write_failures,
        t.lost_span_reads,
        sharded.degraded_shards,
    );
    let _ = writeln!(
        out,
        "  determinism: fixed seed + fixed coalescing boundaries are bit-identical \
         across ingest thread counts (TRIMGAME_SWEEP_THREADS 1..=8)",
    );
    out
}

/// `expt collect --recover`: rebuilds the venue from the spill
/// directory's manifests, resumes the run from the recovered
/// watermarks, and proves bit-identical convergence against a clean
/// uninterrupted reference run.
///
/// # Panics
/// Panics if the spill directory holds no recoverable manifests, or the
/// resumed venue diverges from the uninterrupted reference.
fn recover_report(
    kind: crate::empirical::SubstrateKind,
    cfg: &CollectorConfig,
    dir: &std::path::Path,
) -> String {
    use std::fmt::Write as _;

    let (venue, recovery) = RangedVenue::recover_from_spill(dir)
        .unwrap_or_else(|e| panic!("recovery from {} failed: {e}", dir.display()));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "collector recovery — substrate {} ({})",
        kind.name(),
        dir.display(),
    );
    let _ = writeln!(
        out,
        "  recovered: {} spans ({} rounds) across {} shards  quarantined {}  rounds lost {}",
        recovery.spans_recovered(),
        recovery.rounds_recovered(),
        recovery.shards.len(),
        recovery.spans_quarantined(),
        recovery.rounds_lost(),
    );
    let _ = writeln!(out, "  watermarks: {:?}", recovery.watermarks(cfg.streams),);

    // Resume fault-free from the recovered watermarks, then replay the
    // whole run fault-free and untiered as the reference.
    let resume_cfg = CollectorConfig {
        faults: None,
        ..cfg.clone()
    };
    let resumed = run_on_inner(kind, &resume_cfg, Some((venue, &recovery)));
    let reference_cfg = CollectorConfig {
        tier: None,
        faults: None,
        ..cfg.clone()
    };
    let reference = run_on(kind, &reference_cfg);
    let resumed_records = resumed.venue.merged().records();
    let reference_records = reference.venue.merged().records();
    assert_eq!(
        resumed_records.len(),
        reference_records.len(),
        "resumed venue holds {} records, uninterrupted reference {}",
        resumed_records.len(),
        reference_records.len(),
    );
    assert!(
        resumed_records == reference_records,
        "resumed venue diverges from the uninterrupted reference",
    );
    let _ = writeln!(
        out,
        "  resumed: replayed to {} records across {} shards  (suppressed re-posts at/below watermarks)",
        resumed.venue.total_len(),
        cfg.streams,
    );
    let _ = writeln!(
        out,
        "  recovered + resumed venue is bit-identical to the uninterrupted reference \
         ({} merged records compared)",
        reference_records.len(),
    );
    out
}

/// Runs the collector on `kind`'s standard substrate instance.
fn run_on(kind: crate::empirical::SubstrateKind, cfg: &CollectorConfig) -> CollectorReport {
    run_on_inner(kind, cfg, None)
}

/// [`run_on`] with an optional recovered venue to resume from.
fn run_on_inner(
    kind: crate::empirical::SubstrateKind,
    cfg: &CollectorConfig,
    resume: Option<(RangedVenue, &RecoveryReport)>,
) -> CollectorReport {
    use crate::empirical::{
        standard_ldp_population, standard_ml_dataset, standard_pool, SubstrateKind,
    };
    match kind {
        SubstrateKind::Scalar => {
            let pool = standard_pool();
            run_collector_inner(
                cfg,
                |stream| scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream),
                resume,
            )
        }
        SubstrateKind::Ml => {
            use trim_core::ml_sim::{MlScenario, MlSimConfig};
            use trim_core::simulation::{Scheme, POLICY_SEED_STREAM};
            let data = standard_ml_dataset();
            run_collector_inner(
                cfg,
                |stream| {
                    let seed = derive_seed(derive_seed(cfg.seed, ENGINE_STREAM), stream as u64);
                    let ml_cfg = MlSimConfig {
                        rounds: cfg.rounds,
                        seed,
                        ..MlSimConfig::new(Scheme::TitForTat, 0.9, 0.2, seed)
                    };
                    StreamSetup {
                        scenario: MlScenario::new(&data, &ml_cfg),
                        defender: Box::new(ml_cfg.scheme.defender(ml_cfg.tth, 1.0, ml_cfg.red)),
                        adversary: Box::new(ml_cfg.scheme.adversary(ml_cfg.tth)),
                        rng: seeded_rng(seed),
                        policy_seed: derive_seed(seed, POLICY_SEED_STREAM),
                    }
                },
                resume,
            )
        }
        SubstrateKind::Ldp => {
            use trim_core::adversary::AdversaryPolicy;
            use trim_core::ldp_sim::{ldp_defender, LdpDefense, LdpScenario, LdpSimConfig};
            use trim_core::simulation::POLICY_SEED_STREAM;
            let population = standard_ldp_population();
            run_collector_inner(
                cfg,
                |stream| {
                    let seed = derive_seed(derive_seed(cfg.seed, ENGINE_STREAM), stream as u64);
                    let ldp_cfg = LdpSimConfig {
                        rounds: cfg.rounds,
                        users_per_round: 400,
                        ..LdpSimConfig::new(3.0, 0.2, seed)
                    };
                    let defense = LdpDefense::TitForTat;
                    // The calibration round consumes the head of the main
                    // stream, exactly as the pull-based LDP driver does.
                    let mut rng = seeded_rng(seed);
                    let scenario = LdpScenario::new(&population, defense, &ldp_cfg, &mut rng);
                    StreamSetup {
                        scenario,
                        defender: Box::new(ldp_defender(defense, &ldp_cfg)),
                        adversary: Box::new(AdversaryPolicy::Fixed { percentile: 1.0 }),
                        rng,
                        policy_seed: derive_seed(seed, POLICY_SEED_STREAM),
                    }
                },
                resume,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical::standard_pool;

    fn small_cfg() -> CollectorConfig {
        CollectorConfig {
            streams: 4,
            threads: 0,
            rounds: 30,
            batch: 16,
            channel_cap: 64,
            reorder_window: 3,
            jitter: 8,
            late_every: 41,
            late_policy: LatePolicy::Drop,
            round_span: 8,
            tier: None,
            faults: None,
            seed: 7,
        }
    }

    fn finals(report: &CollectorReport) -> Vec<(u64, u64, usize)> {
        report
            .streams
            .iter()
            .map(|s| {
                (
                    s.run.final_u_a.to_bits(),
                    s.run.final_u_c.to_bits(),
                    s.run.rounds,
                )
            })
            .collect()
    }

    fn merged_rounds(report: &CollectorReport) -> Vec<(usize, usize)> {
        report
            .venue
            .merged()
            .records()
            .iter()
            .map(|(c, r)| (r.round, *c))
            .collect()
    }

    #[test]
    fn collector_output_is_bit_identical_across_thread_counts() {
        // The acceptance contract: same seed, same coalescing
        // boundaries → identical outputs for TRIMGAME_SWEEP_THREADS-
        // style thread counts 1 and 8 (8 > streams exercises the cap).
        let pool = standard_pool();
        let run = |threads: usize| {
            let cfg = CollectorConfig {
                threads,
                ..small_cfg()
            };
            run_collector(&cfg, |stream| {
                scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream)
            })
        };
        let single = run(1);
        let multi = run(8);
        assert_eq!(finals(&single), finals(&multi));
        assert_eq!(merged_rounds(&single), merged_rounds(&multi));
        let a: Vec<CoalesceStats> = single.streams.iter().map(|s| s.coalesce).collect();
        let b: Vec<CoalesceStats> = multi.streams.iter().map(|s| s.coalesce).collect();
        assert_eq!(a, b);
        assert_eq!(single.rounds_played, multi.rounds_played);
        assert_eq!(single.records_ingested, multi.records_ingested);
    }

    #[test]
    fn collector_plays_the_requested_rounds_and_records_them() {
        let pool = standard_pool();
        let cfg = small_cfg();
        let report = run_collector(&cfg, |stream| {
            scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream)
        });
        assert_eq!(report.streams.len(), cfg.streams);
        // The deliberate stale duplicates may drop, but every genuine
        // round's batch has on-time records under this jitter, so all
        // rounds play.
        for s in &report.streams {
            assert_eq!(s.run.rounds, cfg.rounds, "stream {}", s.stream);
            assert!(s.coalesce.late > 0, "late path never exercised");
            assert_eq!(s.coalesce.dropped, s.coalesce.late);
        }
        // Every played round landed on the venue, round-ordered across
        // both shard dimensions.
        let merged = report.venue.merged();
        assert_eq!(merged.len(), report.rounds_played);
        let order = merged_rounds(&report);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert!(report.latency.count() > 0);
        assert!(report.rounds_per_sec() > 0.0);
    }

    #[test]
    fn fold_policy_folds_instead_of_dropping() {
        let pool = standard_pool();
        let cfg = CollectorConfig {
            late_policy: LatePolicy::FoldIntoNext,
            ..small_cfg()
        };
        let report = run_collector(&cfg, |stream| {
            scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream)
        });
        let totals = report.coalesce_totals();
        assert!(totals.late > 0);
        assert_eq!(totals.folded, totals.late);
        assert_eq!(totals.dropped, 0);
    }

    #[test]
    fn tiered_collector_is_bit_identical_to_untiered_across_thread_counts() {
        let pool = standard_pool();
        let spill = std::env::temp_dir().join(format!("trimgame-collect-{}", std::process::id()));
        let tier = TierConfig {
            hot_tail_spans: 1,
            resident_budget: Some(0),
            spill_dir: Some(spill.clone()),
        };
        let run = |threads: usize, tier: Option<TierConfig>| {
            let cfg = CollectorConfig {
                threads,
                tier,
                ..small_cfg()
            };
            run_collector(&cfg, |stream| {
                scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream)
            })
        };
        let untiered = run(1, None);
        let tiered_1 = run(1, Some(tier.clone()));
        let tiered_8 = run(8, Some(tier));
        // A zero budget with a spill directory is the harshest setting:
        // every sealed cold span is framed and evicted to disk mid-run,
        // yet game outcomes and the merged venue view stay bit-identical
        // to the fully-hot run, at any thread count.
        assert_eq!(finals(&untiered), finals(&tiered_1));
        assert_eq!(finals(&untiered), finals(&tiered_8));
        assert_eq!(merged_rounds(&untiered), merged_rounds(&tiered_1));
        assert_eq!(merged_rounds(&untiered), merged_rounds(&tiered_8));
        let t = tiered_1.venue.tier_stats().snapshot();
        assert!(t.frames_built > 0, "no span was ever compacted");
        assert!(t.spill_writes > 0, "zero budget must evict to disk");
        assert_eq!(t.budget_overruns, 0);
        assert_eq!(tiered_1.venue.resident_cold_bytes(1), 0);
        let hot = untiered.venue.tier_stats().snapshot();
        assert_eq!(hot.frames_built, 0, "untiered run must not compact");
        let _ = std::fs::remove_dir_all(&spill);
    }

    #[test]
    fn representative_collector_run_compresses_at_least_4x() {
        // The acceptance ratio rides on *real* collector history — the
        // engine's actual per-round records, span-256 frames — not on a
        // synthetic worst case. 540 rounds seal two spans; the hot-tail
        // exemption leaves one, so exactly one frame is measured.
        let pool = standard_pool();
        let cfg = CollectorConfig {
            streams: 1,
            threads: 1,
            rounds: 540,
            batch: 32,
            round_span: 256,
            tier: Some(TierConfig::default()),
            ..CollectorConfig::default()
        };
        let report = run_collector(&cfg, |stream| {
            scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream)
        });
        let t = report.venue.tier_stats().snapshot();
        assert!(t.frames_built >= 1);
        assert!(
            t.bytes_raw >= 4 * t.bytes_framed,
            "representative compression ratio {:.2}x below 4x ({} B raw, {} B framed)",
            t.bytes_raw as f64 / t.bytes_framed as f64,
            t.bytes_raw,
            t.bytes_framed,
        );
    }

    #[test]
    fn injected_faults_are_counted_and_survived() {
        let pool = standard_pool();
        let spill = std::env::temp_dir().join(format!("trimgame-chaos-{}", std::process::id()));
        let cfg = CollectorConfig {
            rounds: 60,
            tier: Some(TierConfig {
                hot_tail_spans: 1,
                resident_budget: Some(0),
                spill_dir: Some(spill.clone()),
            }),
            faults: Some(FaultSpec {
                seed: 23,
                rate: 0.3,
            }),
            ..small_cfg()
        };
        let report = run_collector(&cfg, |stream| {
            scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream)
        });
        // Zero panics by construction (we got here); every injected
        // fault is visible in the counters and the venue still serves
        // reads through the corrupted/retried spill tier.
        assert!(report.faults.total() > 0, "no fault ever fired");
        assert!(report.faults.stalls > 0, "stall site never fired");
        assert!(report.rounds_played > 0);
        let merged = report.venue.merged().records();
        assert_eq!(merged.len(), report.venue.total_len());
        let t = report.venue.tier_stats().snapshot();
        let spill_faults = report.faults.spill_write_errors + report.faults.spill_short_writes;
        assert!(
            spill_faults == 0 || t.io_retries > 0 || t.spill_write_failures > 0,
            "spill faults fired but neither retries nor terminal failures were counted"
        );
        let _ = std::fs::remove_dir_all(&spill);
    }

    #[test]
    fn killed_run_recovers_and_resumes_bit_identical() {
        // The acceptance contract: a run killed mid-stream by injected
        // disconnects leaves durable manifests; recovery + fault-free
        // resume converges to the bit-identical venue and engine finals
        // of a run that was never interrupted.
        let pool = standard_pool();
        let spill = std::env::temp_dir().join(format!("trimgame-recover-{}", std::process::id()));
        let tier = TierConfig {
            hot_tail_spans: 1,
            resident_budget: Some(0),
            spill_dir: Some(spill.clone()),
        };
        let clean_cfg = CollectorConfig {
            rounds: 80,
            tier: Some(tier.clone()),
            ..small_cfg()
        };
        let faulted_cfg = CollectorConfig {
            faults: Some(FaultSpec {
                seed: 601,
                rate: 0.25,
            }),
            ..clean_cfg.clone()
        };
        let killed = run_collector(&faulted_cfg, |stream| {
            scalar_stream_setup(&pool, faulted_cfg.rounds, faulted_cfg.seed, stream)
        });
        assert!(
            killed.faults.disconnects > 0,
            "seed must kill at least one producer mid-stream"
        );
        assert!(
            killed.rounds_played < clean_cfg.rounds * clean_cfg.streams,
            "disconnects must actually lose rounds"
        );

        let (venue, recovery) = RangedVenue::recover_from_spill(&spill).unwrap();
        assert!(recovery.spans_recovered() > 0, "nothing was recovered");
        let resumed = resume_collector(
            &clean_cfg,
            |stream| scalar_stream_setup(&pool, clean_cfg.rounds, clean_cfg.seed, stream),
            venue,
            &recovery,
        );
        let reference = run_collector(
            &CollectorConfig {
                tier: None,
                ..clean_cfg.clone()
            },
            |stream| scalar_stream_setup(&pool, clean_cfg.rounds, clean_cfg.seed, stream),
        );
        assert_eq!(finals(&resumed), finals(&reference));
        assert!(
            resumed.venue.merged().records() == reference.venue.merged().records(),
            "recovered + resumed venue diverges from the uninterrupted reference"
        );
        // The resumed run re-journaled its adopted spans: a second
        // recovery sees at least as much durable history.
        let (_, second) = RangedVenue::recover_from_spill(&spill).unwrap();
        assert!(second.rounds_recovered() >= recovery.rounds_recovered());
        let _ = std::fs::remove_dir_all(&spill);
    }

    #[test]
    fn latency_histogram_quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.99), 0);
        for ns in [50u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            h.record(Duration::from_nanos(ns));
        }
        let mut merged = LatencyHistogram::new();
        merged.merge(&h);
        merged.merge(&h);
        assert_eq!(merged.count(), 2 * h.count());
        let p50 = merged.quantile_ns(0.5);
        let p99 = merged.quantile_ns(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 >= 1_000_000, "p99 {p99} below the largest sample");
    }
}
