//! `expt` — regenerate any table or figure from the paper.
//!
//! ```text
//! USAGE: expt <experiment>... [--smoke] [--substrate scalar|ml|ldp]
//!                              [--sketch[=EPS]] [--double-oracle] [--json]
//!                              [--recover]
//!        | all | tables | figures | ablations
//!        | benchdiff <baseline.json> <current.json> [tolerance]
//!
//! experiments: table1 table2 fig4 fig5 fig6 fig7 fig8 table3 table4 fig9
//!              ablate-k ablate-red ablate-discount ablate-mechanism ablate-sketch
//!              sweep equilibrium collect bench
//!
//! flags: --smoke          tiny grids for pipeline checks (currently: equilibrium
//!                         runs its 3x3 / 2-3-seed smoke game)
//!        --substrate KIND equilibrium substrate: scalar (default), ml, ldp
//!        --sketch[=EPS]   sketch-native defender: resolve trimming cuts from
//!                         a GK quantile sketch (rank error EPS, default 0.02)
//!                         and report equilibrium value vs epsilon
//!        --double-oracle  equilibrium uses the best-response-oracle solver
//!                         (small measured support grown by continuum best
//!                         responses) instead of the dense payoff grid
//!        --json           bench writes the BENCH_PR10.json snapshot
//!        --recover        collect resumes from the spill manifests left under
//!                         TRIMGAME_COLLECT_SPILL by an interrupted run, then
//!                         proves the result bit-identical to an uninterrupted
//!                         reference run
//!
//! collect runs the streaming collector service (sharded, batch-coalescing
//! ingest) on the --substrate of choice and reports sustained rounds/sec,
//! p99 ingest latency and the sharded-vs-single-stream ratio; --smoke
//! shrinks it to CI scale and TRIMGAME_SWEEP_THREADS caps ingest threads.
//!
//! benchdiff compares two committed snapshots and exits 1 when a shared
//! case regressed past the tolerance (default 3x) — the CI smoke gate.
//!
//! env: TRIMGAME_REPS=N           repetitions per point (default 10; paper 100)
//!      TRIMGAME_SCALE=N          dataset instance divisor (default 64; paper 1)
//!      TRIMGAME_SWEEP_THREADS=N  sweep worker count (default: all cores)
//!      TRIMGAME_EQ_SEEDS=N       equilibrium seeds per payoff cell
//!      TRIMGAME_EQ_SUBSTRATE=K  equilibrium substrate (same as --substrate)
//!      TRIMGAME_EQ_SKETCH=EPS   sketch-native defender (same as --sketch)
//!      TRIMGAME_EQ_ORACLE=1     double-oracle solver (same as --double-oracle)
//!      TRIMGAME_COLLECT_SPILL=DIR  collect spills cold spans (and journals
//!                               manifests) under DIR
//!      TRIMGAME_FAULTS=SEED:RATE deterministic fault injection in collect
//!      TRIMGAME_COLLECT_RECOVER=1  same as --recover
//! ```

use trimgame_bench::{run_experiment, EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: expt <experiment>... [--smoke] [--substrate scalar|ml|ldp] \
         [--sketch[=EPS]] [--json] | all | tables | figures | ablations"
    );
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    eprintln!(
        "env: TRIMGAME_REPS (default 10), TRIMGAME_SCALE (default 64), \
         TRIMGAME_SWEEP_THREADS, TRIMGAME_EQ_SEEDS, TRIMGAME_EQ_SUBSTRATE"
    );
    std::process::exit(2);
}

fn set_substrate(value: &str) {
    match value {
        "scalar" | "ml" | "ldp" => std::env::set_var("TRIMGAME_EQ_SUBSTRATE", value),
        unknown => {
            eprintln!("unknown substrate: {unknown} (expected scalar|ml|ldp)");
            usage();
        }
    }
}

/// `expt benchdiff <baseline.json> <current.json> [tolerance]`: compare
/// two committed bench snapshots; exit 1 when a shared case regressed
/// past the tolerance (default 3x, the CI smoke gate).
fn benchdiff(args: &[String]) -> ! {
    let (Some(base_path), Some(cur_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: expt benchdiff <baseline.json> <current.json> [tolerance]");
        std::process::exit(2);
    };
    let tolerance = args
        .get(2)
        .map(|t| t.parse::<f64>().expect("tolerance must be a number"))
        .unwrap_or(3.0);
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(base_path);
    let current = read(cur_path);
    match trimgame_bench::perf::bench_diff(&baseline, &current, tolerance) {
        Ok(report) => {
            print!("{report}");
            std::process::exit(0);
        }
        Err(report) => {
            print!("{report}");
            eprintln!("bench regression past {tolerance}x detected");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "benchdiff" {
        benchdiff(&args[1..]);
    }
    let mut ids: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            // The smoke flag shrinks grid-based experiments to pipeline
            // scale; experiments read it through their from_env configs.
            "--smoke" => std::env::set_var("TRIMGAME_EQ_SMOKE", "1"),
            // The bench snapshot flag; perf::bench_report reads it.
            "--json" => std::env::set_var("TRIMGAME_BENCH_JSON", "1"),
            "--substrate" => match iter.next() {
                Some(value) => set_substrate(value),
                None => {
                    eprintln!("--substrate needs a value (scalar|ml|ldp)");
                    usage();
                }
            },
            flag if flag.starts_with("--substrate=") => {
                set_substrate(&flag["--substrate=".len()..]);
            }
            // Sketch-native defender; equilibrium reads it via
            // EquilibriumConfig::from_env_for.
            "--sketch" => std::env::set_var("TRIMGAME_EQ_SKETCH", "1"),
            flag if flag.starts_with("--sketch=") => {
                std::env::set_var("TRIMGAME_EQ_SKETCH", &flag["--sketch=".len()..]);
            }
            // Double-oracle solver; equilibrium_report_from_env branches
            // on it.
            "--double-oracle" => std::env::set_var("TRIMGAME_EQ_ORACLE", "1"),
            "--recover" => std::env::set_var("TRIMGAME_COLLECT_RECOVER", "1"),
            "all" => ids.extend(EXPERIMENTS),
            "tables" => ids.extend(["table1", "table2", "table3", "table4"]),
            "figures" => ids.extend(["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]),
            "ablations" => ids.extend(EXPERIMENTS.iter().filter(|e| e.starts_with("ablate"))),
            id if EXPERIMENTS.contains(&id) => {
                ids.push(EXPERIMENTS.iter().find(|e| **e == id).expect("validated"))
            }
            unknown => {
                eprintln!("unknown experiment: {unknown}");
                usage();
            }
        }
    }
    if ids.is_empty() {
        // Flags alone (e.g. `expt --smoke`) select no experiment.
        usage();
    }
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let start = std::time::Instant::now();
        print!("{}", run_experiment(id));
        eprintln!("[{id} done in {:.1}s]", start.elapsed().as_secs_f64());
    }
}
