//! Double-oracle equilibrium solver: continuum-accuracy equilibria at a
//! fraction of the dense grid's engine-run cost.
//!
//! The dense estimator ([`crate::empirical::estimate_on`]) pays one
//! seeded engine run per (defender atom × attacker response × seed) cell
//! even though the solved mixtures end up supported on a handful of
//! atoms. This module closes the loop the way the finite trimming games
//! of Dritsoula et al. and the randomized prediction games of Rota Bulò
//! et al. scale: start from a small seed support on each side, solve the
//! *restricted* game, and alternately grow each side's support with its
//! best response to the opponent's current mixture, so the measured
//! payoff matrix stays O(support²) instead of O(grid²).
//!
//! Two cost-control ideas do the heavy lifting:
//!
//! 1. **Closed-form search, empirical pricing.** Each oracle searches the
//!    response *continuum* against the opponent's current mixture on the
//!    substrate's [`ClosedForm`] loss surface — zero engine runs per
//!    golden-section probe. Only a candidate that improves the model
//!    value by more than the tolerance gets *measured*: one new payoff
//!    row/column through the same common-random-numbers sweep workers
//!    the dense grid uses. The restricted game is therefore solved over
//!    measured data; the model only decides where to spend runs next.
//! 2. **Grow-in-place arena + warm starts.** Payoff means and CIs live
//!    in a stride-addressed arena sized once up front
//!    (`PayoffArena`) — appending a support atom writes into reserved
//!    slots, never reallocates, and never moves the already-measured
//!    entries, so the matrix-growth monotonicity laws (an attacker
//!    column never lowers the restricted value, a defender row never
//!    raises it) hold exactly up to the solver's certified gap. Each
//!    re-solve warm-starts fictitious play from the previous restricted
//!    equilibrium ([`MatrixGame::solve_warm`]).
//!
//! Every step — golden-section probes, placement refinement, cell
//! measurement, fictitious play — is deterministic given the
//! configuration, so the whole solve is bit-identical for any
//! `TRIMGAME_SWEEP_THREADS`.

use crate::empirical::{
    measure_cells, standard_substrate, ClosedForm, EquilibriumConfig, GameSubstrate, SubstrateKind,
};
use std::fmt::Write as _;
use trim_core::matrix::{MatrixGame, MixedEquilibrium};
use trim_core::space::{golden_section_max, refine_placements};

/// Where each oracle's best-response search draws candidates from.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleSearch {
    /// Golden-section / placement-refinement search over the response
    /// *continuum* inside the configured brackets: equilibria the dense
    /// grid cannot express (off-grid thresholds and responses).
    Continuum,
    /// Exhaustive model evaluation over fixed candidate atoms — the
    /// classic finite double oracle. With the dense grid's own atoms as
    /// candidates, the converged restricted game has the dense game's
    /// value (both sides' grid best responses stop improving), which is
    /// what the run-count acceptance benchmark compares.
    Grid {
        /// Defender threshold candidates.
        defender: Vec<f64>,
        /// Attacker response candidates.
        attacker: Vec<f64>,
    },
}

/// Knobs of the double-oracle solve: seed supports, oracle search
/// brackets, growth/termination tolerances, and the engine-run budget.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleOracleConfig {
    /// Initial defender threshold support (strictly ascending).
    pub seed_defender_atoms: Vec<f64>,
    /// Initial attacker response support (strictly ascending).
    pub seed_attacker_atoms: Vec<f64>,
    /// Continuum bracket the defender oracle searches.
    pub defender_bounds: (f64, f64),
    /// Continuum bracket the attacker oracle searches.
    pub attacker_bounds: (f64, f64),
    /// Per-side support-size cap (a growth past this is skipped).
    pub max_support: usize,
    /// Oracle rounds (one attacker + one defender growth attempt each).
    pub max_rounds: usize,
    /// Minimum model-value improvement a best response must promise
    /// before its row/column is measured; also the convergence margin.
    pub tolerance: f64,
    /// Candidates closer than this to an existing same-side atom are
    /// considered already represented and skipped.
    pub min_separation: f64,
    /// Golden-section probes per oracle search.
    pub golden_iterations: usize,
    /// Certified duality-gap target of the intermediate restricted-game
    /// solves (the final solve runs at the full `fp_iterations` budget).
    pub solve_gap: f64,
    /// Hard cap on seeded engine runs. The initial seed-support
    /// measurement always happens; a growth step that would overshoot
    /// the cap is skipped. Defaulted to a third of the dense grid's run
    /// count — the headline acceptance floor.
    pub max_engine_runs: usize,
    /// Candidate source of both best-response searches.
    pub search: OracleSearch,
    /// Seeds per measured cell. Defaults to the grid config's seed count
    /// (sharing its common-random-numbers streams); lowering it trades CI
    /// width for engine runs without touching the dense comparison.
    pub seeds: usize,
}

impl DoubleOracleConfig {
    /// Derives the standard oracle configuration for a grid config: seed
    /// supports on the grid's corner atoms, search brackets extending one
    /// grid spacing beyond the hull (the same hull
    /// `empirical::optimize_support` refines over), and an engine-run
    /// budget of a third of the dense grid.
    ///
    /// # Panics
    /// Panics if `cfg` is degenerate.
    #[must_use]
    pub fn for_game(cfg: &EquilibriumConfig) -> Self {
        cfg.validate();
        let first = cfg.defender_atoms[0];
        let last = *cfg.defender_atoms.last().expect("validated non-empty");
        let spacing = (last - first) / (cfg.defender_atoms.len() - 1) as f64;
        let d_lo = (first - spacing).max(cfg.response_margin);
        let d_hi = (last + spacing).min(1.0);
        let a_lo = (d_lo - cfg.response_margin).max(0.0);
        let a_hi = d_hi;
        let dense_runs = cfg.defender_atoms.len() * cfg.attacker_atoms().len() * cfg.seeds;
        let seed_defender = vec![first, last];
        let seed_attacker = vec![
            (first - cfg.response_margin).clamp(0.0, 1.0),
            (last - cfg.response_margin).clamp(0.0, 1.0),
        ];
        let initial_runs = seed_defender.len() * seed_attacker.len() * cfg.seeds;
        Self {
            seed_defender_atoms: seed_defender,
            seed_attacker_atoms: seed_attacker,
            defender_bounds: (d_lo, d_hi),
            attacker_bounds: (a_lo, a_hi),
            max_support: 8,
            max_rounds: 12,
            tolerance: 1e-3,
            min_separation: (0.5 * cfg.response_margin).max(1e-4),
            golden_iterations: 24,
            solve_gap: 1e-3,
            // Parity cap: the continuum solver chases cat-and-mouse
            // refinements and is allowed up to the dense grid's budget —
            // it converges well under it, and its payoff is a *better*
            // equilibrium (off-grid support), not the dense value.
            max_engine_runs: dense_runs.max(initial_runs),
            search: OracleSearch::Continuum,
            seeds: cfg.seeds,
        }
    }

    /// The grid-restricted variant: both oracles pick candidates from the
    /// dense grid's own atoms, so the converged restricted game reproduces
    /// the dense game's value on a fraction of its engine runs — the
    /// configuration behind the ≥3×-fewer-runs acceptance floor. Two
    /// levers pay for it: a third of the per-cell seeds (every measured
    /// cell still uses a prefix of the dense estimator's
    /// common-random-numbers streams, and the oracle certifies the value
    /// by convergence rather than by oversampling), and a coarser growth
    /// tolerance that stops measuring support whose best-response gain is
    /// below the estimator's own CI scale.
    ///
    /// # Panics
    /// Panics if `cfg` is degenerate.
    #[must_use]
    pub fn grid_for(cfg: &EquilibriumConfig) -> Self {
        let mut oracle = Self::for_game(cfg);
        oracle.search = OracleSearch::Grid {
            defender: cfg.defender_atoms.clone(),
            attacker: cfg.attacker_atoms(),
        };
        oracle.seeds = (cfg.seeds / 3).max(2);
        oracle.tolerance = 5e-3;
        oracle.max_support = cfg
            .defender_atoms
            .len()
            .max(cfg.attacker_atoms().len())
            .max(oracle.max_support);
        let dense_runs = cfg.defender_atoms.len() * cfg.attacker_atoms().len() * cfg.seeds;
        let initial_runs =
            oracle.seed_defender_atoms.len() * oracle.seed_attacker_atoms.len() * oracle.seeds;
        oracle.max_engine_runs = (dense_runs / 3).max(initial_runs);
        oracle
    }

    fn validate(&self) {
        for (name, atoms, bounds) in [
            ("defender", &self.seed_defender_atoms, self.defender_bounds),
            ("attacker", &self.seed_attacker_atoms, self.attacker_bounds),
        ] {
            assert!(!atoms.is_empty(), "need a non-empty {name} seed support");
            assert!(
                atoms.windows(2).all(|w| w[0] < w[1]),
                "{name} seed support must be strictly ascending"
            );
            let (lo, hi) = bounds;
            assert!(
                lo.is_finite() && hi.is_finite() && lo < hi,
                "degenerate {name} bounds [{lo}, {hi}]"
            );
            assert!(
                atoms.iter().all(|a| (lo..=hi).contains(a)),
                "{name} seed support must sit inside its bounds"
            );
            assert!(
                atoms.len() <= self.max_support,
                "{name} seed support exceeds max_support"
            );
        }
        assert!(self.max_rounds > 0, "need at least one oracle round");
        assert!(
            self.tolerance >= 0.0 && self.tolerance.is_finite(),
            "tolerance must be a non-negative finite number"
        );
        assert!(self.min_separation > 0.0, "need a positive separation");
        assert!(self.solve_gap > 0.0, "need a positive solve gap");
        assert!(self.seeds >= 2, "need at least two seeds per cell");
        if let OracleSearch::Grid { defender, attacker } = &self.search {
            assert!(
                !defender.is_empty() && !attacker.is_empty(),
                "grid search needs non-empty candidate sets"
            );
        }
    }
}

/// The measured payoff store of the growing restricted game: means and CI
/// half-widths in one stride-addressed allocation sized for
/// `max_support × max_support` up front. Appending a row or column writes
/// into reserved slots — no reallocation, and existing entries never
/// move, so growth preserves them bit-for-bit.
#[derive(Debug, Clone)]
struct PayoffArena {
    mean: Vec<f64>,
    ci: Vec<f64>,
    stride: usize,
    rows: usize,
    cols: usize,
}

impl PayoffArena {
    fn new(max_rows: usize, max_cols: usize) -> Self {
        Self {
            mean: vec![0.0; max_rows * max_cols],
            ci: vec![0.0; max_rows * max_cols],
            stride: max_cols,
            rows: 0,
            cols: 0,
        }
    }

    fn set(&mut self, i: usize, j: usize, mean: f64, ci: f64) {
        self.mean[i * self.stride + j] = mean;
        self.ci[i * self.stride + j] = ci;
    }

    /// Appends one attacker column: `cells[i]` is the measured
    /// `(mean, ci)` of (defender atom `i`, the new response).
    fn push_col(&mut self, cells: &[(f64, f64)]) {
        assert_eq!(cells.len(), self.rows, "column height mismatch");
        let j = self.cols;
        assert!(j < self.stride, "arena column capacity exceeded");
        for (i, &(m, c)) in cells.iter().enumerate() {
            self.set(i, j, m, c);
        }
        self.cols += 1;
    }

    /// Appends one defender row: `cells[j]` is the measured `(mean, ci)`
    /// of (the new threshold, attacker atom `j`).
    fn push_row(&mut self, cells: &[(f64, f64)]) {
        assert_eq!(cells.len(), self.cols, "row width mismatch");
        let i = self.rows;
        assert!(
            i * self.stride < self.mean.len(),
            "arena row capacity exceeded"
        );
        for (j, &(m, c)) in cells.iter().enumerate() {
            self.set(i, j, m, c);
        }
        self.rows += 1;
    }

    fn mean_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.rows)
            .map(|i| self.mean[i * self.stride..i * self.stride + self.cols].to_vec())
            .collect()
    }

    fn ci_matrix(&self) -> Vec<Vec<f64>> {
        (0..self.rows)
            .map(|i| self.ci[i * self.stride..i * self.stride + self.cols].to_vec())
            .collect()
    }

    fn worst_ci(&self) -> f64 {
        (0..self.rows)
            .flat_map(|i| self.ci[i * self.stride..i * self.stride + self.cols].iter())
            .fold(0.0_f64, |w, &c| w.max(c))
    }
}

/// Which side an oracle step grew (or tried to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleSide {
    /// Attacker column growth (restricted value can only rise).
    Attacker,
    /// Defender row growth (restricted value can only fall).
    Defender,
}

impl OracleSide {
    fn name(self) -> &'static str {
        match self {
            OracleSide::Attacker => "attacker",
            OracleSide::Defender => "defender",
        }
    }
}

/// One oracle step's audit record.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleStep {
    /// Which side's oracle ran.
    pub side: OracleSide,
    /// The best-response candidate the continuum search produced.
    pub atom: f64,
    /// The candidate's model-value improvement over the current mixed
    /// profile (the gate that decided whether to measure it).
    pub model_gain: f64,
    /// Restricted-game value before the step.
    pub value_before: f64,
    /// Restricted-game value after the step (equal to `value_before`
    /// when the step was skipped).
    pub value_after: f64,
    /// Whether the support actually grew (candidate promised more than
    /// the tolerance, was separated from existing atoms, and fit the
    /// support and engine-run caps).
    pub grew: bool,
}

/// The double-oracle solver's output: the discovered supports, the
/// measured restricted game, its equilibrium, the audit trail, and the
/// engine-run accounting against the equivalent dense grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleOracleEquilibrium {
    /// Which substrate the game was played on.
    pub substrate: &'static str,
    /// Final defender support, in discovery order (seed atoms first).
    pub defender_atoms: Vec<f64>,
    /// Final attacker support, in discovery order.
    pub attacker_atoms: Vec<f64>,
    /// Measured mean loss of the restricted game (discovery order).
    pub mean_loss: Vec<Vec<f64>>,
    /// Per-cell CI half-widths.
    pub ci_half_width: Vec<Vec<f64>>,
    /// The restricted game's mixed equilibrium at full solver precision.
    pub equilibrium: MixedEquilibrium,
    /// The closed-form equilibrium of the same restricted supports (the
    /// analytic cross-check, no engine runs).
    pub analytic: MixedEquilibrium,
    /// `|equilibrium value − analytic value|`.
    pub value_gap: f64,
    /// The estimator's own tolerance on that gap (worst cell CI plus
    /// both fictitious-play duality half-gaps).
    pub gap_tolerance: f64,
    /// Every oracle step, in order.
    pub steps: Vec<OracleStep>,
    /// Oracle rounds executed.
    pub rounds: usize,
    /// True if a round ended with neither side improving (rather than
    /// hitting the round, support, or engine-run cap).
    pub converged: bool,
    /// Seeded engine runs actually executed.
    pub engine_runs: usize,
    /// Engine runs the dense grid on the same config would execute.
    pub dense_engine_runs: usize,
    /// Seeds per cell.
    pub seeds: usize,
}

impl DoubleOracleEquilibrium {
    /// Dense-grid runs divided by executed runs: the headline saving.
    #[must_use]
    pub fn run_ratio(&self) -> f64 {
        self.dense_engine_runs as f64 / self.engine_runs as f64
    }

    /// True if the measured and analytic restricted-game values agree
    /// within the estimator's own tolerance.
    #[must_use]
    pub fn within_tolerance(&self) -> bool {
        self.value_gap <= self.gap_tolerance
    }
}

/// Expected model loss of the mixed profile `(x over d_atoms, y over
/// a_atoms)` under the closed form — the oracle searches' baseline.
fn model_value(model: &ClosedForm, d_atoms: &[f64], x: &[f64], a_atoms: &[f64], y: &[f64]) -> f64 {
    d_atoms
        .iter()
        .zip(x)
        .map(|(&t, &xi)| {
            xi * a_atoms
                .iter()
                .zip(y)
                .map(|(&a, &yj)| yj * model.loss(t, a))
                .sum::<f64>()
        })
        .sum()
}

fn min_distance(atoms: &[f64], x: f64) -> f64 {
    atoms
        .iter()
        .map(|&a| (a - x).abs())
        .fold(f64::INFINITY, f64::min)
}

/// The attacker oracle: the response maximizing expected model loss
/// against the defender's mixture `x`, over the configured candidate
/// source. Returns `(candidate, its value)`.
fn attacker_candidate(
    model: &ClosedForm,
    d_atoms: &[f64],
    x: &[f64],
    oracle: &DoubleOracleConfig,
) -> (f64, f64) {
    let f = |a: f64| {
        d_atoms
            .iter()
            .zip(x)
            .map(|(&t, &xi)| xi * model.loss(t, a))
            .sum::<f64>()
    };
    match &oracle.search {
        OracleSearch::Continuum => golden_section_max(
            oracle.attacker_bounds.0,
            oracle.attacker_bounds.1,
            oracle.golden_iterations,
            f,
        ),
        OracleSearch::Grid { attacker, .. } => {
            // Exhaustive over the candidates, ties to the lowest index.
            attacker
                .iter()
                .fold((f64::NAN, f64::NEG_INFINITY), |best, &a| {
                    let v = f(a);
                    if v > best.1 {
                        (a, v)
                    } else {
                        best
                    }
                })
        }
    }
}

/// The defender oracle: the threshold minimizing expected model loss
/// against the attacker's mixture `y`. The minimizer's best response to a
/// fixed mixture is pure, so a singleton placement refinement over the
/// continuum is the exact oracle there. Returns `(candidate, its value)`.
fn defender_candidate(
    model: &ClosedForm,
    d_atoms: &[f64],
    x: &[f64],
    a_atoms: &[f64],
    y: &[f64],
    oracle: &DoubleOracleConfig,
) -> (f64, f64) {
    let g = |t: f64| {
        a_atoms
            .iter()
            .zip(y)
            .map(|(&a, &yj)| yj * model.loss(t, a))
            .sum::<f64>()
    };
    match &oracle.search {
        OracleSearch::Continuum => {
            // Start from the heaviest current atom (ties to the lowest
            // index) for a deterministic, already-good bracket.
            let start = d_atoms
                .iter()
                .zip(x)
                .max_by(|(_, xa), (_, xb)| xa.partial_cmp(xb).expect("finite weights"))
                .map_or(d_atoms[0], |(&t, _)| t)
                .clamp(oracle.defender_bounds.0, oracle.defender_bounds.1);
            let refined = refine_placements(
                &[start],
                oracle.defender_bounds,
                oracle.min_separation,
                2,
                oracle.golden_iterations,
                |atoms, _| g(atoms[0]),
            );
            (refined.atoms[0], refined.value)
        }
        OracleSearch::Grid { defender, .. } => {
            defender.iter().fold((f64::NAN, f64::INFINITY), |best, &t| {
                let v = g(t);
                if v < best.1 {
                    (t, v)
                } else {
                    best
                }
            })
        }
    }
}

/// Runs the double-oracle solve on `sub`.
///
/// # Panics
/// Panics if either configuration is degenerate.
#[must_use]
pub fn double_oracle(
    sub: &dyn GameSubstrate,
    cfg: &EquilibriumConfig,
    oracle: &DoubleOracleConfig,
) -> DoubleOracleEquilibrium {
    cfg.validate();
    oracle.validate();

    // The measurement config: the grid config with the oracle's per-cell
    // seed count (a prefix of the same common-random-numbers streams).
    let mut mcfg = cfg.clone();
    mcfg.seeds = oracle.seeds;

    let model = sub.closed_form(cfg);
    let mut d_atoms = oracle.seed_defender_atoms.clone();
    let mut a_atoms = oracle.seed_attacker_atoms.clone();
    let mut arena = PayoffArena::new(oracle.max_support, oracle.max_support);
    let mut engine_runs = 0usize;

    // Seed-support measurement: the full (tiny) initial block, row-major.
    let seed_cells: Vec<(f64, f64)> = d_atoms
        .iter()
        .flat_map(|&t| a_atoms.iter().map(move |&a| (t, a)))
        .collect();
    let measured = measure_cells(sub, &mcfg, &seed_cells);
    engine_runs += seed_cells.len() * mcfg.seeds;
    arena.cols = a_atoms.len();
    for (i, row) in measured.chunks(a_atoms.len()).enumerate() {
        for (j, &(m, c)) in row.iter().enumerate() {
            arena.set(i, j, m, c);
        }
    }
    arena.rows = d_atoms.len();

    let solve_cap = cfg.fp_iterations.max(1);
    let game = MatrixGame::new(arena.mean_matrix()).expect("finite measured means");
    let (mut eq, _) = game.solve_to_gap(oracle.solve_gap, solve_cap, None);

    let mut steps = Vec::new();
    let mut rounds = 0usize;
    let mut converged = false;

    for _ in 0..oracle.max_rounds {
        rounds += 1;
        let mut grew_this_round = false;
        let mut all_quiet = true;

        // --- Attacker oracle: best response to the defender's mixture.
        let baseline = model_value(
            &model,
            &d_atoms,
            &eq.row_strategy,
            &a_atoms,
            &eq.col_strategy,
        );
        let (a_cand, a_val) = attacker_candidate(&model, &d_atoms, &eq.row_strategy, oracle);
        let a_gain = a_val - baseline;
        // Quiet: the best response is not materially better, or it is
        // already represented in the support. Anything else wants growth;
        // whether it *can* grow depends on the support and run caps.
        let a_quiet =
            a_gain <= oracle.tolerance || min_distance(&a_atoms, a_cand) < oracle.min_separation;
        let col_cost = d_atoms.len() * mcfg.seeds;
        let a_grow = !a_quiet
            && a_atoms.len() < oracle.max_support
            && engine_runs + col_cost <= oracle.max_engine_runs;
        all_quiet &= a_quiet;
        let value_before = eq.value;
        if a_grow {
            let cells: Vec<(f64, f64)> = d_atoms.iter().map(|&t| (t, a_cand)).collect();
            let col = measure_cells(sub, &mcfg, &cells);
            engine_runs += col_cost;
            arena.push_col(&col);
            a_atoms.push(a_cand);
            let game = MatrixGame::new(arena.mean_matrix()).expect("finite measured means");
            let (next, _) = game.solve_to_gap(oracle.solve_gap, solve_cap, Some(&eq));
            eq = next;
            grew_this_round = true;
        }
        steps.push(OracleStep {
            side: OracleSide::Attacker,
            atom: a_cand,
            model_gain: a_gain,
            value_before,
            value_after: eq.value,
            grew: a_grow,
        });

        // --- Defender oracle: best response to the attacker's mixture.
        let baseline = model_value(
            &model,
            &d_atoms,
            &eq.row_strategy,
            &a_atoms,
            &eq.col_strategy,
        );
        let (d_cand, d_val) = defender_candidate(
            &model,
            &d_atoms,
            &eq.row_strategy,
            &a_atoms,
            &eq.col_strategy,
            oracle,
        );
        let d_gain = baseline - d_val;
        let d_quiet =
            d_gain <= oracle.tolerance || min_distance(&d_atoms, d_cand) < oracle.min_separation;
        let row_cost = a_atoms.len() * mcfg.seeds;
        let d_grow = !d_quiet
            && d_atoms.len() < oracle.max_support
            && engine_runs + row_cost <= oracle.max_engine_runs;
        all_quiet &= d_quiet;
        let value_before = eq.value;
        if d_grow {
            let cells: Vec<(f64, f64)> = a_atoms.iter().map(|&a| (d_cand, a)).collect();
            let row = measure_cells(sub, &mcfg, &cells);
            engine_runs += row_cost;
            arena.push_row(&row);
            d_atoms.push(d_cand);
            let game = MatrixGame::new(arena.mean_matrix()).expect("finite measured means");
            let (next, _) = game.solve_to_gap(oracle.solve_gap, solve_cap, Some(&eq));
            eq = next;
            grew_this_round = true;
        }
        steps.push(OracleStep {
            side: OracleSide::Defender,
            atom: d_cand,
            model_gain: d_gain,
            value_before,
            value_after: eq.value,
            grew: d_grow,
        });

        if all_quiet {
            // Neither best response improves past the tolerance: the
            // restricted equilibrium is an equilibrium of the oracle's
            // whole candidate space (up to the tolerance and CI).
            converged = true;
            break;
        }
        if !grew_this_round {
            // Somebody wants to grow but a cap is in the way: stop
            // honestly rather than reporting convergence.
            break;
        }
    }

    // Final solve at the full fictitious-play budget, warm-started.
    let game = MatrixGame::new(arena.mean_matrix()).expect("finite measured means");
    let equilibrium = game.solve_warm(cfg.fp_iterations, Some(&eq));

    // Analytic cross-check over the same discovered supports.
    let analytic_matrix: Vec<Vec<f64>> = d_atoms
        .iter()
        .map(|&t| a_atoms.iter().map(|&a| model.loss(t, a)).collect())
        .collect();
    let analytic_game = MatrixGame::new(analytic_matrix).expect("finite analytic losses");
    let analytic = analytic_game.solve(cfg.fp_iterations);

    let value_gap = (equilibrium.value - analytic.value).abs();
    let gap_tolerance = arena.worst_ci() + 0.5 * (equilibrium.gap() + analytic.gap());
    let dense_engine_runs = cfg.defender_atoms.len() * cfg.attacker_atoms().len() * cfg.seeds;

    DoubleOracleEquilibrium {
        substrate: sub.name(),
        defender_atoms: d_atoms,
        attacker_atoms: a_atoms,
        mean_loss: arena.mean_matrix(),
        ci_half_width: arena.ci_matrix(),
        equilibrium,
        analytic,
        value_gap,
        gap_tolerance,
        steps,
        rounds,
        converged,
        engine_runs,
        dense_engine_runs,
        seeds: mcfg.seeds,
    }
}

/// The `expt equilibrium --double-oracle` report on `kind`'s standard
/// substrate with the standard oracle knobs.
///
/// Runs both search modes back to back: grid-candidate first (reproduces
/// the dense-grid value from a fraction of its engine runs — the cost
/// benchmark) and then continuum (best responses anywhere in the
/// brackets, so it can find equilibria the dense grid cannot express).
///
/// # Panics
/// Panics on a degenerate configuration.
#[must_use]
pub fn double_oracle_report_for(kind: SubstrateKind, cfg: &EquilibriumConfig) -> String {
    let sub = standard_substrate(kind);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Double-oracle equilibrium [{} substrate]: {} rounds x {} batch ==",
        sub.name(),
        cfg.rounds,
        cfg.batch
    );
    if let Some(eps) = cfg.sketch_epsilon {
        let _ = writeln!(
            out,
            "sketch-native defender: cuts resolved from a GK quantile sketch, rank error epsilon = {eps}"
        );
    }

    let grid = DoubleOracleConfig::grid_for(cfg);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- grid-candidate pass: recover the dense {}x{} grid value cheaply --",
        cfg.defender_atoms.len(),
        cfg.attacker_atoms().len()
    );
    render_solution(&mut out, &grid, &double_oracle(&*sub, cfg, &grid));

    let continuum = DoubleOracleConfig::for_game(cfg);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "-- continuum pass: best responses anywhere in the brackets --"
    );
    render_solution(&mut out, &continuum, &double_oracle(&*sub, cfg, &continuum));
    out
}

/// Appends one solved double-oracle pass (trace, supports, equilibrium,
/// cross-check, run accounting) to the report.
fn render_solution(
    out: &mut String,
    oracle: &DoubleOracleConfig,
    solved: &DoubleOracleEquilibrium,
) {
    let _ = writeln!(out, "{} seeds per payoff cell", solved.seeds);
    let _ = writeln!(
        out,
        "{} search, seed support {}x{}, brackets defender [{:.3}, {:.3}] / attacker [{:.3}, {:.3}], tolerance {:.1e}",
        match &oracle.search {
            OracleSearch::Continuum => "continuum",
            OracleSearch::Grid { .. } => "grid-candidate",
        },
        oracle.seed_defender_atoms.len(),
        oracle.seed_attacker_atoms.len(),
        oracle.defender_bounds.0,
        oracle.defender_bounds.1,
        oracle.attacker_bounds.0,
        oracle.attacker_bounds.1,
        oracle.tolerance
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "oracle trace (restricted-game value after each step):");
    for (k, s) in solved.steps.iter().enumerate() {
        let action = if s.grew { "grew" } else { "skip" };
        let _ = writeln!(
            out,
            "  step {:>2} {:>8} {action} @ {:.4}  model gain {:>8.5}  value {:.5} -> {:.5}",
            k + 1,
            s.side.name(),
            s.atom,
            s.model_gain,
            s.value_before,
            s.value_after
        );
    }
    let _ = writeln!(
        out,
        "{} after {} round(s)",
        if solved.converged {
            "converged: neither oracle improves past the tolerance"
        } else {
            "stopped at a cap (rounds, support, or engine-run budget)"
        },
        solved.rounds
    );

    let fmt_atoms = |atoms: &[f64]| {
        atoms
            .iter()
            .map(|a| format!("{a:.4}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "final support: defender [{}] x attacker [{}] (discovery order)",
        fmt_atoms(&solved.defender_atoms),
        fmt_atoms(&solved.attacker_atoms)
    );
    let weights = |w: &[f64]| {
        w.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(
        out,
        "restricted equilibrium: value {:.5} (bounds [{:.5}, {:.5}], fp gap {:.1e})",
        solved.equilibrium.value,
        solved.equilibrium.lower,
        solved.equilibrium.upper,
        solved.equilibrium.gap()
    );
    let _ = writeln!(
        out,
        "  defender mixture: [{}]",
        weights(&solved.equilibrium.row_strategy)
    );
    let _ = writeln!(
        out,
        "  attacker mixture: [{}]",
        weights(&solved.equilibrium.col_strategy)
    );
    let _ = writeln!(
        out,
        "analytic cross-check: value {:.5}, gap {:.5} vs tolerance {:.5} -> {}",
        solved.analytic.value,
        solved.value_gap,
        solved.gap_tolerance,
        if solved.within_tolerance() {
            "WITHIN CI"
        } else {
            "OUTSIDE CI"
        }
    );
    let _ = writeln!(
        out,
        "engine runs: {} vs dense grid {} ({:.2}x fewer)",
        solved.engine_runs,
        solved.dense_engine_runs,
        solved.run_ratio()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical::{estimate_on, ScalarSubstrate};
    use proptest::prelude::*;

    fn pool() -> Vec<f64> {
        (0..10_000).map(|i| f64::from(i % 1000) / 10.0).collect()
    }

    fn tiny_cfg() -> EquilibriumConfig {
        let mut cfg = EquilibriumConfig::smoke();
        cfg.defender_atoms = vec![0.88, 0.92, 0.96];
        cfg.seeds = 3;
        cfg.master_seed = 7;
        cfg.rounds = 4;
        cfg.batch = 200;
        cfg.workers = 1;
        cfg.fp_iterations = 20_000;
        cfg
    }

    #[test]
    fn seed_support_only_matches_restricted_game() {
        // With growth disabled (zero extra budget) the solver is exactly
        // the restricted seed game measured through the dense estimator's
        // own cells.
        let sub = ScalarSubstrate::new(&pool());
        let cfg = tiny_cfg();
        let mut oracle = DoubleOracleConfig::for_game(&cfg);
        oracle.max_engine_runs =
            oracle.seed_defender_atoms.len() * oracle.seed_attacker_atoms.len() * cfg.seeds;
        let solved = double_oracle(&sub, &cfg, &oracle);
        assert_eq!(solved.engine_runs, oracle.max_engine_runs);
        assert_eq!(solved.defender_atoms, oracle.seed_defender_atoms);
        assert_eq!(solved.attacker_atoms, oracle.seed_attacker_atoms);
        assert!(solved.steps.iter().all(|s| !s.grew));
        // The measured block agrees with the dense estimator on the same
        // support (same cells, same seeds, same workers).
        let mut dense_cfg = cfg.clone();
        dense_cfg.defender_atoms = oracle.seed_defender_atoms.clone();
        dense_cfg.response_margin = cfg.response_margin;
        let dense = estimate_on(&sub, &dense_cfg);
        for (do_row, dense_row) in solved.mean_loss.iter().zip(&dense.mean_loss) {
            for (a, b) in do_row.iter().zip(dense_row) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn solve_is_worker_count_invariant() {
        let sub = ScalarSubstrate::new(&pool());
        let mut cfg = tiny_cfg();
        let oracle = DoubleOracleConfig::for_game(&cfg);
        cfg.workers = 1;
        let one = double_oracle(&sub, &cfg, &oracle);
        cfg.workers = 8;
        let eight = double_oracle(&sub, &cfg, &oracle);
        assert_eq!(one, eight);
    }

    #[test]
    fn attacker_growth_never_lowers_and_defender_never_raises_value() {
        let sub = ScalarSubstrate::new(&pool());
        let cfg = tiny_cfg();
        let mut oracle = DoubleOracleConfig::for_game(&cfg);
        oracle.max_engine_runs = usize::MAX;
        let solved = double_oracle(&sub, &cfg, &oracle);
        for s in &solved.steps {
            if !s.grew {
                assert_eq!(s.value_before.to_bits(), s.value_after.to_bits());
                continue;
            }
            // Exact matrix-growth monotonicity up to the certified solver
            // slack on both sides of the step.
            let slack = 2.0 * oracle.solve_gap + 1e-9;
            match s.side {
                OracleSide::Attacker => assert!(
                    s.value_after >= s.value_before - slack,
                    "attacker growth lowered value: {} -> {}",
                    s.value_before,
                    s.value_after
                ),
                OracleSide::Defender => assert!(
                    s.value_after <= s.value_before + slack,
                    "defender growth raised value: {} -> {}",
                    s.value_before,
                    s.value_after
                ),
            }
        }
    }

    #[test]
    fn budget_cap_is_respected_and_accounted() {
        let sub = ScalarSubstrate::new(&pool());
        let cfg = tiny_cfg();
        let mut oracle = DoubleOracleConfig::for_game(&cfg);
        oracle.max_engine_runs = 30;
        let solved = double_oracle(&sub, &cfg, &oracle);
        assert!(solved.engine_runs <= 30, "runs {}", solved.engine_runs);
        // Every cell of the final restricted matrix was measured exactly
        // once (seed block + one measurement per appended row/column), so
        // the accounting is exactly cells x seeds.
        assert_eq!(
            solved.engine_runs,
            solved.defender_atoms.len() * solved.attacker_atoms.len() * cfg.seeds
        );
    }

    #[test]
    fn report_is_deterministic_and_mentions_the_ratio() {
        let cfg = tiny_cfg();
        let a = double_oracle_report_for(SubstrateKind::Scalar, &cfg);
        let b = double_oracle_report_for(SubstrateKind::Scalar, &cfg);
        assert_eq!(a, b);
        assert!(a.contains("engine runs:"));
        assert!(a.contains("x fewer"));
    }

    proptest! {
        /// The oracle growth operations at the matrix level: appending a
        /// column (attacker option) never decreases the restricted-game
        /// lower bound below the prior certified lower bound, and
        /// appending a row (defender option) never increases the upper
        /// bound above the prior certified upper bound.
        #[test]
        fn growth_respects_certified_bounds(
            entries in proptest::collection::vec(
                proptest::collection::vec(0.0_f64..1.0, 3), 3),
            col in proptest::collection::vec(0.0_f64..1.0, 3),
            row in proptest::collection::vec(0.0_f64..1.0, 3),
        ) {
            let base = MatrixGame::new(entries.clone()).unwrap();
            let (eq, _) = base.solve_to_gap(1e-4, 4_000_000, None);

            let mut with_col = entries.clone();
            for (r, &c) in with_col.iter_mut().zip(&col) {
                r.push(c);
            }
            let grown = MatrixGame::new(with_col).unwrap();
            let (eq_col, _) = grown.solve_to_gap(1e-4, 4_000_000, Some(&eq));
            // True values satisfy v' >= v; certified bounds bracket both.
            prop_assert!(eq_col.upper >= eq.lower - 1e-9,
                "column growth broke the lower bound: {} < {}", eq_col.upper, eq.lower);

            let mut with_row = entries;
            with_row.push(row);
            let grown = MatrixGame::new(with_row).unwrap();
            let (eq_row, _) = grown.solve_to_gap(1e-4, 4_000_000, Some(&eq));
            prop_assert!(eq_row.lower <= eq.upper + 1e-9,
                "row growth broke the upper bound: {} > {}", eq_row.lower, eq.upper);
        }
    }
}

/// The double-oracle-vs-dense contract (satellite of the PR acceptance
/// criteria): the grid-candidate oracle must land on the dense grid's
/// equilibrium value within the two estimators' combined tolerance.
#[cfg(test)]
mod contract {
    use super::*;
    use crate::empirical::{estimate_on, ScalarSubstrate};

    fn pool() -> Vec<f64> {
        (0..10_000).map(|i| f64::from(i % 1000) / 10.0).collect()
    }

    /// `|v_do - v_dense|` within the sum of both estimators' own
    /// CI-plus-solver-gap tolerances.
    fn assert_values_agree(
        solved: &DoubleOracleEquilibrium,
        dense: &crate::empirical::EmpiricalEquilibrium,
    ) {
        let gap = (solved.equilibrium.value - dense.empirical.value).abs();
        let tolerance = solved.gap_tolerance + dense.gap_tolerance;
        assert!(
            gap <= tolerance,
            "grid oracle value {:.5} vs dense {:.5}: gap {:.5} > combined tolerance {:.5}",
            solved.equilibrium.value,
            dense.empirical.value,
            gap,
            tolerance
        );
    }

    #[test]
    fn grid_oracle_matches_dense_value_on_the_smoke_game() {
        let sub = ScalarSubstrate::new(&pool());
        let cfg = EquilibriumConfig::smoke();
        let dense = estimate_on(&sub, &cfg);
        // The smoke game is too small for the default run budget to allow
        // any growth (its whole dense grid is 27 runs), so lift the cap:
        // this test checks the value contract, not the cost contract.
        let mut oracle = DoubleOracleConfig::grid_for(&cfg);
        oracle.max_engine_runs = usize::MAX;
        let solved = double_oracle(&sub, &cfg, &oracle);
        assert!(solved.converged, "smoke grid oracle should converge");
        assert_values_agree(&solved, &dense);
    }

    /// The full PR acceptance configuration: the default grid-candidate
    /// oracle reproduces the dense 5x5x12 scalar value (within combined
    /// tolerance) from at least 3x fewer engine runs. Ignored by default
    /// because the dense baseline alone is 300 engine runs at full
    /// rounds/batch — run with `cargo test --release -- --ignored` or see
    /// the committed `BENCH_PR7.json` cases.
    #[test]
    #[ignore = "full-scale acceptance run; covered by the committed bench snapshot"]
    fn full_grid_acceptance_three_x_fewer_runs() {
        let sub = ScalarSubstrate::new(&pool());
        let cfg = EquilibriumConfig::default_grid();
        let dense = estimate_on(&sub, &cfg);
        let oracle = DoubleOracleConfig::grid_for(&cfg);
        let solved = double_oracle(&sub, &cfg, &oracle);
        let dense_runs = cfg.defender_atoms.len() * cfg.attacker_atoms().len() * cfg.seeds;
        assert!(
            solved.engine_runs * 3 <= dense_runs,
            "needs >= 3x fewer runs: {} vs dense {}",
            solved.engine_runs,
            dense_runs
        );
        assert_values_agree(&solved, &dense);
    }
}
