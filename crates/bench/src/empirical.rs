//! Empirical equilibrium estimation over the sweep grid (`expt
//! equilibrium`).
//!
//! The §III-C2 mixed-strategy space is solved *analytically* in
//! `trim-core` (the Stackelberg solver over the continuum, the matrix
//! machinery over finite supports) — this module closes the loop by
//! *playing* the same finite threshold game through thousands of seeded
//! `Engine` runs and checking that the analytic and simulated equilibria
//! agree:
//!
//! 1. **Estimate** — fan a (defender-atom × attacker-response × seed)
//!    grid through [`crate::sweep::parallel_map`]; each cell is one lean
//!    scalar-game engine run, and its payoff is the collector's mean
//!    per-round loss (surviving percentile damage + benign trim
//!    overhead). Aggregate per-cell means with confidence intervals.
//! 2. **Solve** — feed the mean loss matrix to
//!    [`MatrixGame::solve`] (deterministic fictitious play with certified
//!    value bounds) to get the empirical mixed equilibrium; solve the
//!    closed-form expected-loss matrix of the same game for the analytic
//!    equilibrium, and the continuum Stackelberg problem for the
//!    deterministic pure-commitment benchmark.
//! 3. **Check** — report the empirical-vs-analytic value gap against the
//!    estimator's own tolerance (the minimax value is 1-Lipschitz in the
//!    sup-norm of the matrix, so the worst cell CI plus the solver
//!    duality gaps bound the expected discrepancy), and the defender's
//!    *randomization advantage* — how much the mixed equilibrium beats
//!    the best deterministic threshold, the randomized-prediction-games
//!    effect.
//! 4. **Play** — instantiate the solved mixture as a
//!    [`RandomizedDefender`], run it against each pure response and
//!    against the board-driven [`AdaptiveAttacker`], and compare realized
//!    losses with the matrix predictions.
//!
//! Every cell's outcome depends only on its grid coordinates and derived
//! seed, so the whole pipeline is bit-deterministic regardless of
//! `TRIMGAME_SWEEP_THREADS`.

use crate::sweep::{env_workers, parallel_map};
use std::fmt::Write as _;
use trim_core::adversary::{AdaptiveAttacker, AdversaryPolicy};
use trim_core::equilibrium::StackelbergSolver;
use trim_core::matrix::{MatrixGame, MixedEquilibrium};
use trim_core::simulation::{run_game_with_policies, GameConfig, Scheme};
use trim_core::space::StrategySpace;
use trim_core::strategy::RandomizedDefender;
use trimgame_numerics::quantile::{ecdf, percentile_sorted, Interpolation};
use trimgame_numerics::rand_ext::derive_seed;
use trimgame_numerics::stats::OnlineStats;
use trimgame_stream::board::PublicBoard;

/// Configuration of one empirical equilibrium estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumConfig {
    /// The defender's threshold support (percentiles, ascending).
    pub defender_atoms: Vec<f64>,
    /// The attacker responds just below each defender atom, at
    /// `atom − response_margin` (the evasion margin of the ideal attack).
    pub response_margin: f64,
    /// Independent seeded game instances per payoff cell.
    pub seeds: usize,
    /// Master seed; per-repetition seeds derive from it.
    pub master_seed: u64,
    /// Rounds per game instance.
    pub rounds: usize,
    /// Benign batch size per round.
    pub batch: usize,
    /// Attack ratio (poison per benign).
    pub attack_ratio: f64,
    /// Sweep worker count (`0` = all cores). Never affects results.
    pub workers: usize,
    /// Fictitious-play iterations for both matrix solves.
    pub fp_iterations: usize,
    /// CI multiplier for per-cell confidence intervals (2.58 ≈ 99%).
    pub z: f64,
}

impl EquilibriumConfig {
    /// The CI smoke configuration: a 3×3 threshold game, 2 seeds per
    /// cell — small enough for a pipeline step, large enough to exercise
    /// every stage.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            defender_atoms: vec![0.88, 0.92, 0.96],
            response_margin: 0.01,
            seeds: 2,
            master_seed: 2024,
            rounds: 10,
            batch: 400,
            attack_ratio: 0.2,
            workers: 0,
            fp_iterations: 50_000,
            z: 3.0,
        }
    }

    /// The full `expt equilibrium` grid: a 5×5 game with 12 seeds per
    /// cell.
    #[must_use]
    pub fn default_grid() -> Self {
        Self {
            defender_atoms: vec![0.86, 0.89, 0.92, 0.95, 0.98],
            response_margin: 0.01,
            seeds: 12,
            master_seed: 2024,
            rounds: 20,
            batch: 1_000,
            attack_ratio: 0.2,
            workers: 0,
            fp_iterations: 200_000,
            z: 2.58,
        }
    }

    /// Reads the CLI environment: `TRIMGAME_EQ_SMOKE=1` selects the smoke
    /// grid, `TRIMGAME_EQ_SEEDS=N` overrides the per-cell repetitions,
    /// and `TRIMGAME_SWEEP_THREADS` sets the worker count.
    #[must_use]
    pub fn from_env() -> Self {
        let smoke = std::env::var("TRIMGAME_EQ_SMOKE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        let mut cfg = if smoke {
            Self::smoke()
        } else {
            Self::default_grid()
        };
        if let Some(seeds) = std::env::var("TRIMGAME_EQ_SEEDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.seeds = seeds.max(2);
        }
        cfg.workers = env_workers();
        cfg
    }

    /// The attacker's response atoms: just below each defender atom.
    #[must_use]
    pub fn attacker_atoms(&self) -> Vec<f64> {
        self.defender_atoms
            .iter()
            .map(|a| (a - self.response_margin).clamp(0.0, 1.0))
            .collect()
    }

    fn validate(&self) {
        assert!(
            self.defender_atoms.len() >= 2,
            "need at least two defender atoms"
        );
        assert!(
            self.defender_atoms.windows(2).all(|w| w[0] < w[1]),
            "defender atoms must be strictly ascending"
        );
        assert!(
            self.defender_atoms.iter().all(|a| (0.0..=1.0).contains(a)),
            "defender atoms must be percentiles"
        );
        assert!(self.response_margin > 0.0, "need a positive margin");
        assert!(self.seeds >= 2, "need at least two seeds per cell");
        assert!(self.rounds > 0 && self.batch > 0, "degenerate game shape");
    }
}

/// The estimator's output: the measured game, both equilibria, and the
/// cross-check metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalEquilibrium {
    /// Defender threshold atoms (rows).
    pub defender_atoms: Vec<f64>,
    /// Attacker response atoms (columns).
    pub attacker_atoms: Vec<f64>,
    /// Mean collector loss per cell, over the seed grid.
    pub mean_loss: Vec<Vec<f64>>,
    /// Per-cell CI half-widths (`z·sd/√seeds`).
    pub ci_half_width: Vec<Vec<f64>>,
    /// The mixed equilibrium of the *measured* matrix.
    pub empirical: MixedEquilibrium,
    /// The closed-form expected-loss matrix of the same finite game.
    pub analytic_matrix: Vec<Vec<f64>>,
    /// The mixed equilibrium of the analytic matrix.
    pub analytic: MixedEquilibrium,
    /// `|empirical value − analytic value|`.
    pub value_gap: f64,
    /// The estimator's own tolerance on the value gap: the worst cell CI
    /// (the minimax value is 1-Lipschitz in the sup-norm) plus both
    /// fictitious-play duality half-gaps.
    pub gap_tolerance: f64,
    /// Best deterministic commitment in the *measured* game:
    /// `min_i max_j mean_loss[i][j]`. Same matrix as `empirical`, so the
    /// difference to `empirical.value` is pure mixing benefit.
    pub pure_empirical_value: f64,
    /// Best deterministic commitment restricted to the atom grid under
    /// the analytic continuum model (follower riding *at* the threshold —
    /// a slightly more pessimistic damage model than the measured columns
    /// at `atom − response_margin`; reported as a benchmark, not used for
    /// the advantage).
    pub pure_grid_value: f64,
    /// The continuum Stackelberg loss (golden-section over the whole
    /// interval, follower riding the threshold).
    pub stackelberg_value: f64,
    /// Seeds per cell.
    pub seeds: usize,
}

impl EmpiricalEquilibrium {
    /// True if the empirical equilibrium value agrees with the analytic
    /// one within the estimator's own tolerance.
    #[must_use]
    pub fn within_tolerance(&self) -> bool {
        self.value_gap <= self.gap_tolerance
    }

    /// How much the mixed equilibrium improves on the best deterministic
    /// threshold *in the same measured game* (non-negative up to the
    /// fictitious-play gap, since mixing can only help the minimizer):
    /// the randomized-prediction-games advantage.
    #[must_use]
    pub fn randomization_advantage(&self) -> f64 {
        self.pure_empirical_value - self.empirical.value
    }
}

/// Game shape of one estimation cell: `Fixed` defender at `t_atom` (via
/// the `BaselineStatic` scheme) against a `Fixed` attacker at `a_atom`,
/// driven through `run_game_engine`.
fn cell_config(cfg: &EquilibriumConfig, t_atom: f64, a_atom: f64, seed: u64) -> GameConfig {
    let mut game = play_config(cfg, seed);
    game.tth = t_atom;
    game.adversary_override = Some(AdversaryPolicy::Fixed { percentile: a_atom });
    game
}

/// Game shape for the played-mixture paths, where both policies are passed
/// to `run_game_with_policies` explicitly: no adversary override is
/// configured (it would be ignored), and `tth` — anchored to the lowest
/// defender atom — only sets the scenario's quality standard, which
/// nothing in the loss accounting reads.
fn play_config(cfg: &EquilibriumConfig, seed: u64) -> GameConfig {
    let mut game = GameConfig::new(Scheme::BaselineStatic);
    game.tth = cfg.defender_atoms[0];
    game.rounds = cfg.rounds;
    game.batch = cfg.batch;
    game.attack_ratio = cfg.attack_ratio;
    game.seed = seed;
    game
}

/// The collector's mean per-round loss of one seeded engine run: the
/// negated final cumulative collector utility over the round count
/// (percentile damage of surviving poison plus benign trim overhead).
fn engine_loss(pool: &[f64], game: &GameConfig) -> f64 {
    let out = trim_core::simulation::run_game_engine(pool, game, false);
    -out.utilities.u_c.last().expect("rounds > 0") / game.rounds as f64
}

/// Estimates the empirical payoff matrix and solves both equilibria.
///
/// The (row × column × seed) grid fans through
/// [`parallel_map`]; each job's outcome
/// depends only on its coordinates, so the result is identical for any
/// worker count.
///
/// # Panics
/// Panics if the pool is empty or the configuration is degenerate.
#[must_use]
pub fn estimate(pool: &[f64], cfg: &EquilibriumConfig) -> EmpiricalEquilibrium {
    cfg.validate();
    let rows = cfg.defender_atoms.len();
    let attacker_atoms = cfg.attacker_atoms();
    let cols = attacker_atoms.len();
    let per_cell = cfg.seeds;
    let n_jobs = rows * cols * per_cell;

    // One seed per repetition, shared across cells (common random
    // numbers): cell payoffs differ only through the strategy pair, which
    // sharpens every cross-cell comparison the solver makes.
    let seeds: Vec<u64> = (0..per_cell as u64)
        .map(|s| derive_seed(cfg.master_seed, s))
        .collect();

    let losses = parallel_map(n_jobs, cfg.workers, |idx| {
        let cell = idx / per_cell;
        let (i, j) = (cell / cols, cell % cols);
        let game = cell_config(
            cfg,
            cfg.defender_atoms[i],
            attacker_atoms[j],
            seeds[idx % per_cell],
        );
        engine_loss(pool, &game)
    });

    let mut mean_loss = vec![vec![0.0; cols]; rows];
    let mut ci_half_width = vec![vec![0.0; cols]; rows];
    let mut worst_ci = 0.0_f64;
    for i in 0..rows {
        for j in 0..cols {
            let mut stats = OnlineStats::new();
            let cell = i * cols + j;
            for s in 0..per_cell {
                stats.push(losses[cell * per_cell + s]);
            }
            let se = (stats.sample_variance() / per_cell as f64).sqrt();
            mean_loss[i][j] = stats.mean();
            ci_half_width[i][j] = cfg.z * se;
            worst_ci = worst_ci.max(ci_half_width[i][j]);
        }
    }

    let empirical_game = MatrixGame::new(mean_loss.clone()).expect("finite means");
    let empirical = empirical_game.solve(cfg.fp_iterations);
    let pure_empirical_value = empirical_game.pure_commitment_value();

    let model = AnalyticModel::new(pool, cfg);
    let analytic_matrix = analytic_loss_matrix(&model, cfg);
    let analytic_game = MatrixGame::new(analytic_matrix.clone()).expect("finite analytic losses");
    let analytic = analytic_game.solve(cfg.fp_iterations);

    let (stackelberg_value, pure_grid_value) = analytic_continuum(&model, cfg);

    let value_gap = (empirical.value - analytic.value).abs();
    let gap_tolerance = worst_ci + 0.5 * (empirical.gap() + analytic.gap());

    EmpiricalEquilibrium {
        defender_atoms: cfg.defender_atoms.clone(),
        attacker_atoms,
        mean_loss,
        ci_half_width,
        empirical,
        analytic_matrix,
        analytic,
        value_gap,
        gap_tolerance,
        pure_empirical_value,
        pure_grid_value,
        stackelberg_value,
        seeds: per_cell,
    }
}

/// The closed-form side of the game, computed once per estimate: the
/// sorted reference pool and the poison/benign mixture shares — shared by
/// the matrix and continuum benchmarks so their rounding rules can never
/// desynchronize.
struct AnalyticModel {
    sorted: Vec<f64>,
    poison_share: f64,
    benign_share: f64,
}

impl AnalyticModel {
    fn new(pool: &[f64], cfg: &EquilibriumConfig) -> Self {
        let mut sorted = pool.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in pool"));
        // Mirror PoisonSpec's per-batch rounding exactly.
        let n_benign = cfg.batch as f64;
        let n_poison = (cfg.attack_ratio * n_benign).round();
        let total = n_benign + n_poison;
        Self {
            sorted,
            poison_share: n_poison / total,
            benign_share: n_benign / total,
        }
    }

    fn ref_at(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p.clamp(0.0, 1.0), Interpolation::Linear)
    }

    /// Benign tail mass above the cut at percentile `t` (the overhead the
    /// collector pays for trimming there).
    fn overhead(&self, t: f64) -> f64 {
        self.benign_share * (1.0 - ecdf(&self.sorted, self.ref_at(t)))
    }
}

/// The closed-form expected loss of the finite threshold game, using the
/// exact primitives the scalar scenario resolves positions with: poison
/// placed at the reference value of the response atom survives iff it
/// does not exceed the reference value of the threshold atom, earning the
/// adversary `(poison share)·a`; the collector additionally pays the
/// benign pool tail mass above the cut.
fn analytic_loss_matrix(model: &AnalyticModel, cfg: &EquilibriumConfig) -> Vec<Vec<f64>> {
    cfg.defender_atoms
        .iter()
        .map(|&t| {
            let cut = model.ref_at(t);
            let overhead = model.overhead(t);
            cfg.attacker_atoms()
                .iter()
                .map(|&a| {
                    let survives = model.ref_at(a) <= cut;
                    let damage = if survives {
                        model.poison_share * a
                    } else {
                        0.0
                    };
                    damage + overhead
                })
                .collect()
        })
        .collect()
}

/// The continuum Stackelberg benchmark: leader loss
/// `q·x + (1−q)·tail(x)` with the follower riding the threshold, solved
/// over the hull of the atom grid. Returns `(continuum value, best pure
/// commitment restricted to the atoms)`.
fn analytic_continuum(model: &AnalyticModel, cfg: &EquilibriumConfig) -> (f64, f64) {
    let x_l = cfg.defender_atoms[0] - cfg.response_margin;
    let x_r = *cfg.defender_atoms.last().expect("non-empty atoms");
    let space = StrategySpace::new(x_l, x_r).expect("margin below the lowest atom");
    let poison_share = model.poison_share;
    let damage = move |x: f64| poison_share * x;
    let overhead = |x: f64| model.overhead(x);
    let solver = StackelbergSolver::new(space, damage, overhead);
    let continuum = solver.solve().map_or(f64::NAN, |eq| eq.leader_loss);
    let pure_grid = solver.pure_commitment_value(&cfg.defender_atoms);
    (continuum, pure_grid)
}

/// Realized play of a mixed defender strategy: mean per-round loss over
/// the seed grid, against each pure attacker response column.
///
/// Each (column × seed) cell builds a fresh [`RandomizedDefender`] from
/// `row_strategy` and runs it through the engine — the policy sub-stream
/// derives from the cell seed, so the fan-out is deterministic for any
/// worker count. This is the "sweep-parallel ≡ sequential for randomized
/// policies" surface.
///
/// # Panics
/// Panics if `row_strategy` does not match the defender atoms or has no
/// mass.
#[must_use]
pub fn play_mixed_vs_columns(
    pool: &[f64],
    cfg: &EquilibriumConfig,
    row_strategy: &[f64],
) -> Vec<OnlineStats> {
    cfg.validate();
    assert_eq!(
        row_strategy.len(),
        cfg.defender_atoms.len(),
        "strategy/atom mismatch"
    );
    let attacker_atoms = cfg.attacker_atoms();
    let cols = attacker_atoms.len();
    let per_cell = cfg.seeds;
    let seeds: Vec<u64> = (0..per_cell as u64)
        .map(|s| derive_seed(cfg.master_seed, s))
        .collect();
    let losses = parallel_map(cols * per_cell, cfg.workers, |idx| {
        let (j, s) = (idx / per_cell, idx % per_cell);
        let game = play_config(cfg, seeds[s]);
        let defender =
            RandomizedDefender::new(&cfg.defender_atoms, row_strategy).expect("validated strategy");
        let out = run_game_with_policies(
            pool,
            &game,
            Box::new(defender),
            Box::new(AdversaryPolicy::Fixed {
                percentile: attacker_atoms[j],
            }),
            None,
            false,
        );
        -out.utilities.u_c.last().expect("rounds > 0") / game.rounds as f64
    });
    (0..cols)
        .map(|j| {
            let mut stats = OnlineStats::new();
            for s in 0..per_cell {
                stats.push(losses[j * per_cell + s]);
            }
            stats
        })
        .collect()
}

/// Realized play of the solved equilibrium against the board-driven
/// [`AdaptiveAttacker`]: mean per-round loss over the seed grid.
///
/// # Panics
/// Panics on a degenerate configuration or strategy.
#[must_use]
pub fn play_vs_adaptive(
    pool: &[f64],
    cfg: &EquilibriumConfig,
    row_strategy: &[f64],
) -> OnlineStats {
    cfg.validate();
    let per_cell = cfg.seeds;
    let losses = parallel_map(per_cell, cfg.workers, |s| {
        let seed = derive_seed(cfg.master_seed, s as u64);
        let game = play_config(cfg, seed);
        let defender =
            RandomizedDefender::new(&cfg.defender_atoms, row_strategy).expect("validated strategy");
        let board = PublicBoard::new();
        let attacker = AdaptiveAttacker::new(board.clone(), cfg.response_margin, 0.99);
        let out = run_game_with_policies(
            pool,
            &game,
            Box::new(defender),
            Box::new(attacker),
            Some(board),
            false,
        );
        -out.utilities.u_c.last().expect("rounds > 0") / game.rounds as f64
    });
    let mut stats = OnlineStats::new();
    for loss in losses {
        stats.push(loss);
    }
    stats
}

/// The standard benchmark pool (uniform scalar stream, the same pool the
/// sweep and the snapshot contract use).
#[must_use]
pub fn standard_pool() -> Vec<f64> {
    (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect()
}

/// The `expt equilibrium` experiment report.
///
/// # Panics
/// Panics on a degenerate configuration.
#[must_use]
pub fn equilibrium_report(cfg: &EquilibriumConfig) -> String {
    let pool = standard_pool();
    let est = estimate(&pool, cfg);
    let rows = est.defender_atoms.len();
    let cols = est.attacker_atoms.len();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Empirical equilibrium: {rows}x{cols} threshold game, {} seeds/cell, {} rounds x {} batch ==",
        est.seeds, cfg.rounds, cfg.batch
    );
    let _ = writeln!(
        out,
        "collector loss per round, mean +/- {:.2}sigma CI (rows: defender atoms; cols: attacker just-below responses)",
        cfg.z
    );
    let _ = write!(out, "{:>8}", "");
    for a in &est.attacker_atoms {
        let _ = write!(out, " {a:>15.3}");
    }
    let _ = writeln!(out);
    for i in 0..rows {
        let _ = write!(out, "{:>8.3}", est.defender_atoms[i]);
        for j in 0..cols {
            let _ = write!(
                out,
                " {:>7.4}+/-{:>6.4}",
                est.mean_loss[i][j], est.ci_half_width[i][j]
            );
        }
        let _ = writeln!(out);
    }

    let weights = |w: &[f64]| {
        w.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "empirical equilibrium: value {:.5} (bounds [{:.5}, {:.5}], fp gap {:.1e})",
        est.empirical.value,
        est.empirical.lower,
        est.empirical.upper,
        est.empirical.gap()
    );
    let _ = writeln!(
        out,
        "  defender mix [{}] | attacker mix [{}]",
        weights(&est.empirical.row_strategy),
        weights(&est.empirical.col_strategy)
    );
    let _ = writeln!(
        out,
        "analytic equilibrium:  value {:.5} (bounds [{:.5}, {:.5}], fp gap {:.1e})",
        est.analytic.value,
        est.analytic.lower,
        est.analytic.upper,
        est.analytic.gap()
    );
    let _ = writeln!(
        out,
        "  defender mix [{}] | attacker mix [{}]",
        weights(&est.analytic.row_strategy),
        weights(&est.analytic.col_strategy)
    );
    let _ = writeln!(
        out,
        "value gap {:.5} vs estimator tolerance {:.5} -> {}",
        est.value_gap,
        est.gap_tolerance,
        if est.within_tolerance() {
            "WITHIN CI"
        } else {
            "OUTSIDE CI"
        }
    );
    let _ = writeln!(
        out,
        "pure commitment (measured game) {:.5} -> randomization advantage {:.5}",
        est.pure_empirical_value,
        est.randomization_advantage()
    );
    let _ = writeln!(
        out,
        "analytic benchmarks: pure commitment on the grid {:.5} | continuum Stackelberg {:.5}",
        est.pure_grid_value, est.stackelberg_value
    );

    // Play the solved mixture through the engine.
    let realized = play_mixed_vs_columns(&pool, cfg, &est.empirical.row_strategy);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "played equilibrium (RandomizedDefender on the solved mix) vs pure responses:"
    );
    for (j, stats) in realized.iter().enumerate() {
        let predicted: f64 = (0..rows)
            .map(|i| est.empirical.row_strategy[i] * est.mean_loss[i][j])
            .sum();
        let _ = writeln!(
            out,
            "  vs a={:.3}: realized {:.5} (sd {:.5}) | matrix prediction {:.5}",
            est.attacker_atoms[j],
            stats.mean(),
            stats.sample_variance().sqrt(),
            predicted
        );
    }
    let adaptive = play_vs_adaptive(&pool, cfg, &est.empirical.row_strategy);
    let _ = writeln!(
        out,
        "  vs AdaptiveAttacker (board-driven best response): realized {:.5} (sd {:.5}); equilibrium upper bound {:.5}",
        adaptive.mean(),
        adaptive.sample_variance().sqrt(),
        est.empirical.upper
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EquilibriumConfig {
        EquilibriumConfig {
            defender_atoms: vec![0.88, 0.92, 0.96],
            response_margin: 0.01,
            seeds: 3,
            master_seed: 7,
            rounds: 4,
            batch: 200,
            attack_ratio: 0.2,
            workers: 1,
            fp_iterations: 20_000,
            z: 3.0,
        }
    }

    #[test]
    fn estimate_is_scheduling_independent() {
        let pool = standard_pool();
        let cfg = tiny();
        let sequential = estimate(&pool, &cfg);
        for workers in [2, 4, 7] {
            let mut c = cfg.clone();
            c.workers = workers;
            let parallel = estimate(&pool, &c);
            assert_eq!(
                sequential.mean_loss, parallel.mean_loss,
                "workers={workers}"
            );
            assert_eq!(sequential.empirical, parallel.empirical);
            assert_eq!(sequential.analytic, parallel.analytic);
        }
    }

    #[test]
    fn randomized_play_is_scheduling_independent() {
        // Satellite contract: sweep-parallel == sequential holds for
        // randomized (sub-stream-sampling) policies too.
        let pool = standard_pool();
        let cfg = tiny();
        let mix = [0.2, 0.5, 0.3];
        let seq: Vec<f64> = play_mixed_vs_columns(&pool, &cfg, &mix)
            .iter()
            .map(OnlineStats::mean)
            .collect();
        for workers in [2, 5] {
            let mut c = cfg.clone();
            c.workers = workers;
            let par: Vec<f64> = play_mixed_vs_columns(&pool, &c, &mix)
                .iter()
                .map(OnlineStats::mean)
                .collect();
            assert_eq!(seq, par, "workers={workers}");
        }
        let a = play_vs_adaptive(&pool, &cfg, &mix);
        let mut c = cfg.clone();
        c.workers = 3;
        let b = play_vs_adaptive(&pool, &c, &mix);
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn empirical_value_matches_analytic_within_ci() {
        // Satellite contract: on the 3x3 smoke game the estimated
        // equilibrium value falls within the estimator's own confidence
        // interval of the analytic value.
        let pool = standard_pool();
        let est = estimate(&pool, &EquilibriumConfig::smoke());
        assert!(
            est.within_tolerance(),
            "gap {} tolerance {}",
            est.value_gap,
            est.gap_tolerance
        );
        // The matrix means themselves sit near the closed form. Per-cell
        // CIs estimated from 2 samples are too noisy for a cellwise
        // assertion, so run this part with enough seeds for a stable
        // standard-error estimate.
        let mut cfg = EquilibriumConfig::smoke();
        cfg.seeds = 8;
        let est = estimate(&pool, &cfg);
        for i in 0..est.defender_atoms.len() {
            for j in 0..est.attacker_atoms.len() {
                let diff = (est.mean_loss[i][j] - est.analytic_matrix[i][j]).abs();
                assert!(
                    diff <= est.ci_half_width[i][j] + 1e-9,
                    "cell ({i},{j}): diff {diff} ci {}",
                    est.ci_half_width[i][j]
                );
            }
        }
        assert!(est.within_tolerance());
    }

    #[test]
    fn randomization_advantage_is_nonnegative() {
        let pool = standard_pool();
        let est = estimate(&pool, &EquilibriumConfig::smoke());
        // Mixing can only help the defender in the same measured game
        // (up to the fictitious-play gap).
        assert!(
            est.randomization_advantage() >= -est.empirical.gap() - 1e-9,
            "advantage {}",
            est.randomization_advantage()
        );
        // On this game the advantage is strictly positive: every pure row
        // is exploitable by some just-below response.
        assert!(est.randomization_advantage() > 0.0);
        // And the grid-restricted pure value can never beat the continuum.
        assert!(est.pure_grid_value >= est.stackelberg_value - 1e-9);
    }

    #[test]
    fn report_renders_and_is_deterministic() {
        let cfg = tiny();
        let a = equilibrium_report(&cfg);
        let b = equilibrium_report(&cfg);
        assert_eq!(a, b);
        assert!(a.contains("empirical equilibrium"));
        assert!(a.contains("AdaptiveAttacker"));
        assert!(a.contains("WITHIN CI") || a.contains("OUTSIDE CI"));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_atoms_rejected() {
        let mut cfg = tiny();
        cfg.defender_atoms = vec![0.95, 0.9];
        let _ = estimate(&standard_pool(), &cfg);
    }
}
