//! Empirical equilibrium estimation over the sweep grid (`expt
//! equilibrium`), generic over the simulation substrate.
//!
//! The §III-C2 mixed-strategy space is solved *analytically* in
//! `trim-core` (the Stackelberg solver over the continuum, the matrix
//! machinery over finite supports) — this module closes the loop by
//! *playing* the same finite threshold game through thousands of seeded
//! `Engine` runs and checking that the analytic and simulated equilibria
//! agree. The paper's central claim is that this equilibrium structure is
//! a property of the *game*, not of any one environment, so the whole
//! pipeline runs behind the [`GameSubstrate`] abstraction on all three
//! substrates: scalar value streams, feature-vector collection
//! (k-means anomaly scores), and LDP report streams.
//!
//! 1. **Estimate** — fan a (defender-atom × attacker-response × seed)
//!    grid through [`crate::sweep::parallel_map_with`] — each cell is one
//!    lean scratch-backed engine run on the chosen substrate (every
//!    worker reuses one engine scratch and one substrate arena across
//!    all of its cells), and its payoff is the
//!    collector's mean per-round loss (surviving percentile damage plus
//!    benign trim overhead). Aggregate per-cell means with confidence
//!    intervals.
//! 2. **Solve** — feed the mean loss matrix to
//!    [`MatrixGame::solve`] (deterministic fictitious play with certified
//!    value bounds) to get the empirical mixed equilibrium; solve the
//!    substrate's closed-form expected-loss matrix of the same game for
//!    the analytic equilibrium, and the continuum Stackelberg problem for
//!    the deterministic pure-commitment benchmark. On the LDP substrate
//!    the closed form is genuinely probabilistic: an input-manipulation
//!    attacker's survival probability is the Piecewise Mechanism's exact
//!    CDF at the cut, not a point-mass indicator.
//! 3. **Check** — report the empirical-vs-analytic value gap against the
//!    estimator's own tolerance (the minimax value is 1-Lipschitz in the
//!    sup-norm of the matrix, so the worst cell CI plus the solver
//!    duality gaps bound the expected discrepancy), and the defender's
//!    *randomization advantage* — how much the mixed equilibrium beats
//!    the best deterministic threshold, the randomized-prediction-games
//!    effect.
//! 4. **Play** — instantiate the solved mixture as a
//!    [`RandomizedDefender`], run it against each pure response, against
//!    the board-driven [`AdaptiveAttacker`], and against the no-regret
//!    bandit [`Exp3Attacker`] (whose long-run average payoff must stay
//!    below the game value plus its certified regret bound — the
//!    equilibrium's robustness claim against *learning* attackers).
//! 5. **Optimize** — [`optimize_support`] refines the defender's atom
//!    *placements* (not just the weights on a fixed grid) by coordinate
//!    descent with golden-section line searches, re-estimating the moved
//!    atom's payoff row through the same sweep workers; accepted moves
//!    strictly improve the solved game value.
//!
//! Every cell's outcome depends only on its grid coordinates and derived
//! seed, so the whole pipeline is bit-deterministic regardless of
//! `TRIMGAME_SWEEP_THREADS`.

use crate::sweep::{env_workers, parallel_map_with};
use std::fmt::Write as _;
use std::sync::Arc;
use trim_core::adversary::{AdaptiveAttacker, AdversaryPolicy, AttackPolicy, Exp3Attacker};
use trim_core::engine::EngineScratch;
use trim_core::equilibrium::StackelbergSolver;
use trim_core::ldp_sim::{
    counterfeit_input, ldp_calibration, run_ldp_collection_with_scratch, LdpArena, LdpDefense,
    LdpSimConfig,
};
use trim_core::matrix::{MatrixGame, MixedEquilibrium};
use trim_core::ml_sim::{collect_poisoned_with_scratch, MlArena, MlModel, MlSimConfig};
use trim_core::simulation::{run_game_with_scratch, GameConfig, ScalarArena, Scheme};
use trim_core::space::{refine_placements, StrategySpace};
use trim_core::strategy::{DefenderPolicy, RandomizedDefender, ThresholdPolicy};
use trimgame_datasets::synthetic::{GaussianComponent, GmmSpec};
use trimgame_datasets::Dataset;
use trimgame_ldp::piecewise::Piecewise;
use trimgame_numerics::quantile::{ecdf, percentile_sorted, Interpolation};
use trimgame_numerics::rand_ext::{derive_seed, seeded_rng};
use trimgame_numerics::stats::OnlineStats;
use trimgame_stream::board::PublicBoard;

/// Stream index of the Exp3 attacker's private sampling sub-seed.
const EXP3_SEED_STREAM: u64 = 0x4558_5033; // "EXP3"
/// Stream index of the LDP closed-form calibration sample's seed.
const LDP_CALIB_STREAM: u64 = 0x4C43_414C; // "LCAL"

/// Configuration of one empirical equilibrium estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumConfig {
    /// The defender's threshold support (percentiles, ascending).
    pub defender_atoms: Vec<f64>,
    /// The attacker responds just below each defender atom, at
    /// `atom − response_margin` (the evasion margin of the ideal attack).
    pub response_margin: f64,
    /// Independent seeded game instances per payoff cell.
    pub seeds: usize,
    /// Master seed; per-repetition seeds derive from it.
    pub master_seed: u64,
    /// Rounds per game instance.
    pub rounds: usize,
    /// Benign batch size per round (honest users per round on the LDP
    /// substrate).
    pub batch: usize,
    /// Attack ratio (poison per benign).
    pub attack_ratio: f64,
    /// Sweep worker count (`0` = all cores). Never affects results.
    pub workers: usize,
    /// Fictitious-play iterations for both matrix solves.
    pub fp_iterations: usize,
    /// CI multiplier for per-cell confidence intervals (2.58 ≈ 99%).
    pub z: f64,
    /// Rank error of the sketch-native defender. `Some(ε)` resolves every
    /// trimming cut from a GK sketch of the substrate's clean reference
    /// stream (scalar pool / ML anomaly scores / LDP calibration reports),
    /// pricing ε into the equilibrium; `None` keeps exact cuts.
    pub sketch_epsilon: Option<f64>,
}

impl EquilibriumConfig {
    /// The CI smoke configuration on the scalar substrate: a 3×3
    /// threshold game, 2 seeds per cell — small enough for a pipeline
    /// step, large enough to exercise every stage.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            defender_atoms: vec![0.88, 0.92, 0.96],
            response_margin: 0.01,
            seeds: 2,
            master_seed: 2024,
            rounds: 10,
            batch: 400,
            attack_ratio: 0.2,
            workers: 0,
            fp_iterations: 50_000,
            z: 3.0,
            sketch_epsilon: None,
        }
    }

    /// The full scalar `expt equilibrium` grid: a 5×5 game with 12 seeds
    /// per cell.
    #[must_use]
    pub fn default_grid() -> Self {
        Self {
            defender_atoms: vec![0.86, 0.89, 0.92, 0.95, 0.98],
            response_margin: 0.01,
            seeds: 12,
            master_seed: 2024,
            rounds: 20,
            batch: 1_000,
            attack_ratio: 0.2,
            workers: 0,
            fp_iterations: 200_000,
            z: 2.58,
            sketch_epsilon: None,
        }
    }

    /// The smoke configuration for `kind` (scalar keeps
    /// [`EquilibriumConfig::smoke`]; the ML and LDP games shrink the
    /// environment to pipeline scale).
    #[must_use]
    pub fn smoke_for(kind: SubstrateKind) -> Self {
        match kind {
            SubstrateKind::Scalar => Self::smoke(),
            SubstrateKind::Ml => Self {
                seeds: 3,
                rounds: 5,
                batch: 150,
                ..Self::smoke()
            },
            SubstrateKind::Ldp => Self {
                defender_atoms: vec![0.84, 0.9, 0.96],
                response_margin: 0.02,
                seeds: 3,
                rounds: 5,
                batch: 500,
                ..Self::smoke()
            },
        }
    }

    /// The full grid for `kind`.
    #[must_use]
    pub fn default_for(kind: SubstrateKind) -> Self {
        match kind {
            SubstrateKind::Scalar => Self::default_grid(),
            SubstrateKind::Ml => Self {
                seeds: 8,
                rounds: 10,
                batch: 200,
                ..Self::default_grid()
            },
            SubstrateKind::Ldp => Self {
                defender_atoms: vec![0.84, 0.87, 0.9, 0.93, 0.96],
                response_margin: 0.02,
                seeds: 8,
                rounds: 8,
                batch: 1_000,
                ..Self::default_grid()
            },
        }
    }

    /// Reads the CLI environment: `TRIMGAME_EQ_SMOKE=1` selects the smoke
    /// grid, `TRIMGAME_EQ_SEEDS=N` overrides the per-cell repetitions,
    /// `TRIMGAME_EQ_SKETCH` turns on the sketch-native defender (`1` for
    /// the default rank error, or the ε itself, e.g. `0.02`), and
    /// `TRIMGAME_SWEEP_THREADS` sets the worker count.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_env_for(SubstrateKind::Scalar)
    }

    /// [`EquilibriumConfig::from_env`], anchored to `kind`'s grids.
    #[must_use]
    pub fn from_env_for(kind: SubstrateKind) -> Self {
        let smoke = std::env::var("TRIMGAME_EQ_SMOKE")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        let mut cfg = if smoke {
            Self::smoke_for(kind)
        } else {
            Self::default_for(kind)
        };
        if let Some(seeds) = std::env::var("TRIMGAME_EQ_SEEDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg.seeds = seeds.max(2);
        }
        if let Some(eps) = sketch_epsilon_from_env() {
            cfg.sketch_epsilon = Some(eps);
        }
        cfg.workers = env_workers();
        cfg
    }

    /// The attacker's response atoms: just below each defender atom.
    #[must_use]
    pub fn attacker_atoms(&self) -> Vec<f64> {
        self.defender_atoms
            .iter()
            .map(|a| (a - self.response_margin).clamp(0.0, 1.0))
            .collect()
    }

    pub(crate) fn validate(&self) {
        assert!(
            self.defender_atoms.len() >= 2,
            "need at least two defender atoms"
        );
        assert!(
            self.defender_atoms.windows(2).all(|w| w[0] < w[1]),
            "defender atoms must be strictly ascending"
        );
        assert!(
            self.defender_atoms.iter().all(|a| (0.0..=1.0).contains(a)),
            "defender atoms must be percentiles"
        );
        assert!(self.response_margin > 0.0, "need a positive margin");
        assert!(self.seeds >= 2, "need at least two seeds per cell");
        assert!(self.rounds > 0 && self.batch > 0, "degenerate game shape");
        if let Some(eps) = self.sketch_epsilon {
            assert!(
                eps > 0.0 && eps < 0.5,
                "sketch rank error must sit in (0, 0.5)"
            );
        }
    }
}

/// `TRIMGAME_EQ_SKETCH`: unset/`0` keeps exact cuts, `1`/`true` enables
/// the sketch-native defender at the default rank error, and a float in
/// `(0, 0.5)` sets ε directly.
fn sketch_epsilon_from_env() -> Option<f64> {
    let raw = std::env::var("TRIMGAME_EQ_SKETCH").ok()?;
    if raw == "0" || raw.is_empty() || raw.eq_ignore_ascii_case("false") {
        return None;
    }
    if raw == "1" || raw.eq_ignore_ascii_case("true") {
        return Some(DEFAULT_SKETCH_EPSILON);
    }
    match raw.parse::<f64>() {
        Ok(eps) if eps > 0.0 && eps < 0.5 => Some(eps),
        _ => panic!("TRIMGAME_EQ_SKETCH must be 1/true or an ε in (0, 0.5), got {raw:?}"),
    }
}

/// Rank error used when the sketch-native defender is enabled without an
/// explicit ε (`TRIMGAME_EQ_SKETCH=1`).
pub const DEFAULT_SKETCH_EPSILON: f64 = 0.02;

/// Which simulation substrate the equilibrium pipeline runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstrateKind {
    /// 1-D value streams (§VI-B) — the PR 3 pipeline.
    Scalar,
    /// Feature-vector collection scored against clean k-means centroids
    /// (§VI-C).
    Ml,
    /// LDP report streams under protocol-compliant input manipulation
    /// (§VI-E).
    Ldp,
}

impl SubstrateKind {
    /// All substrates, in paper order.
    pub const ALL: [SubstrateKind; 3] =
        [SubstrateKind::Scalar, SubstrateKind::Ml, SubstrateKind::Ldp];

    /// CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SubstrateKind::Scalar => "scalar",
            SubstrateKind::Ml => "ml",
            SubstrateKind::Ldp => "ldp",
        }
    }

    /// Parses a CLI/env name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SubstrateKind::Scalar),
            "ml" => Some(SubstrateKind::Ml),
            "ldp" => Some(SubstrateKind::Ldp),
            _ => None,
        }
    }
}

/// What one seeded engine run on a substrate reports back to the
/// estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOutcome {
    /// The collector's mean per-round loss (`−u_c / rounds`): surviving
    /// percentile damage plus benign trim overhead. The payoff matrix
    /// entry.
    pub collector_loss: f64,
    /// The adversary's mean per-round gain (`u_a / rounds`): the damage
    /// term alone. What a learning attacker optimizes.
    pub attacker_gain: f64,
}

/// One worker's reusable cell state: the engine trajectory scratch plus
/// the substrate-specific arena (pool tables, fitted ML model handle,
/// LDP calibration buffers). Created once per sweep worker by
/// [`GameSubstrate::new_scratch`] and threaded through every cell that
/// worker plays — the whole payoff grid allocates per *worker*, not per
/// cell.
pub struct CellScratch {
    /// The engine's reusable trajectory buffers.
    pub engine: EngineScratch,
    /// The substrate's arena; each substrate downcasts its own type.
    pub arena: Box<dyn std::any::Any + Send>,
}

impl std::fmt::Debug for CellScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellScratch").finish_non_exhaustive()
    }
}

impl CellScratch {
    /// Wraps a substrate arena with fresh engine buffers.
    #[must_use]
    pub fn new(arena: Box<dyn std::any::Any + Send>) -> Self {
        Self {
            engine: EngineScratch::new(),
            arena,
        }
    }
}

/// One simulation substrate the equilibrium pipeline can run on: how a
/// (defender policy × attack policy × seed) cell is played, and the
/// substrate's closed-form loss model for the analytic cross-check.
///
/// All three implementations route through the scratch-backed entry
/// points the engine core exposes (`run_game_with_scratch`,
/// `collect_poisoned_with_scratch`, `run_ldp_collection_with_scratch`),
/// so anything expressible as a [`ThresholdPolicy`]/[`AttackPolicy`]
/// pair — pure atoms, solved mixtures, board-driven best responses,
/// bandit learners — plays the same game the payoff grid measures, and
/// every worker reuses one [`CellScratch`] across all of its cells.
pub trait GameSubstrate: Sync {
    /// Substrate name for reports.
    fn name(&self) -> &'static str;

    /// Creates one worker's reusable scratch (engine buffers + arena).
    fn new_scratch(&self) -> CellScratch;

    /// Plays one seeded engine run. `tth` anchors the scenario's public
    /// quality standard (the nominal threshold percentile); `seed` drives
    /// the environment stream and derives the policy sub-streams;
    /// `scratch` is the worker's reusable state from
    /// [`GameSubstrate::new_scratch`] (its contents never influence the
    /// outcome).
    #[allow(clippy::too_many_arguments)] // one arg per game ingredient
    fn run_cell(
        &self,
        cfg: &EquilibriumConfig,
        tth: f64,
        defender: Box<dyn ThresholdPolicy>,
        attacker: Box<dyn AttackPolicy>,
        board: Option<PublicBoard>,
        seed: u64,
        scratch: &mut CellScratch,
    ) -> CellOutcome;

    /// The substrate's closed-form loss model over the finite game.
    fn closed_form(&self, cfg: &EquilibriumConfig) -> ClosedForm;
}

/// The closed-form side of a substrate's game: the sorted clean reference
/// distribution (values, anomaly scores, or calibration reports), the
/// poison/benign mixture shares, and the attack's survival model under a
/// cut. Shared by the analytic matrix and the continuum benchmark so
/// their rounding rules can never desynchronize.
#[derive(Debug, Clone)]
pub struct ClosedForm {
    sorted: Vec<f64>,
    poison_share: f64,
    benign_share: f64,
    survive: SurviveModel,
}

/// How attack mass at response percentile `a` survives the cut at
/// threshold percentile `t`.
#[derive(Debug, Clone)]
enum SurviveModel {
    /// The attack is a point mass at the reference value of `a`
    /// (scalar/ML substrates): survival is the indicator
    /// `ref(a) ≤ ref(t)`.
    PointMass,
    /// The attack is a protocol-compliant LDP report of the counterfeit
    /// input `a` maps to: survival is the mechanism's exact CDF at the
    /// cut.
    LdpPiecewise(Piecewise),
}

/// The poison share of one batch under the per-batch rounding every
/// substrate applies: `round(ratio·batch) / (batch + round(ratio·batch))`.
fn batch_poison_share(batch: usize, attack_ratio: f64) -> f64 {
    let n_benign = batch as f64;
    let n_poison = (attack_ratio * n_benign).round();
    n_poison / (n_benign + n_poison)
}

impl ClosedForm {
    fn new(sorted: Vec<f64>, batch: usize, attack_ratio: f64, survive: SurviveModel) -> Self {
        let poison_share = batch_poison_share(batch, attack_ratio);
        Self {
            sorted,
            poison_share,
            benign_share: 1.0 - poison_share,
            survive,
        }
    }

    /// The reference value at percentile `p` of the clean distribution.
    #[must_use]
    pub fn ref_at(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p.clamp(0.0, 1.0), Interpolation::Linear)
    }

    /// Benign tail mass above the cut at percentile `t` (the overhead the
    /// collector pays for trimming there).
    #[must_use]
    pub fn overhead(&self, t: f64) -> f64 {
        self.benign_share * (1.0 - ecdf(&self.sorted, self.ref_at(t)))
    }

    /// Probability that attack mass at response `a` survives the cut at
    /// threshold `t`.
    #[must_use]
    pub fn survive_prob(&self, a: f64, t: f64) -> f64 {
        match &self.survive {
            SurviveModel::PointMass => {
                if self.ref_at(a) <= self.ref_at(t) {
                    1.0
                } else {
                    0.0
                }
            }
            SurviveModel::LdpPiecewise(mech) => mech.cdf(counterfeit_input(a), self.ref_at(t)),
        }
    }

    /// Expected collector loss of the pure profile `(t, a)`:
    /// `poison_share · a · P(survive) + overhead(t)`.
    #[must_use]
    pub fn loss(&self, t: f64, a: f64) -> f64 {
        self.poison_share * a * self.survive_prob(a, t) + self.overhead(t)
    }

    /// The poison share of a batch (used to scale learning attackers'
    /// payoff bounds).
    #[must_use]
    pub fn poison_share(&self) -> f64 {
        self.poison_share
    }
}

/// The scalar value-stream substrate (the PR 3 pipeline, unchanged
/// numbers). Holds an arena template (pool + sorted reference table,
/// built once) that worker scratches clone — no per-worker sort, no
/// per-cell pool copy.
#[derive(Debug, Clone)]
pub struct ScalarSubstrate {
    arena: ScalarArena,
}

impl ScalarSubstrate {
    /// Builds the substrate over `pool`.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    #[must_use]
    pub fn new(pool: &[f64]) -> Self {
        Self {
            arena: ScalarArena::new(pool),
        }
    }

    fn game_config(cfg: &EquilibriumConfig, tth: f64, seed: u64) -> GameConfig {
        let mut game = GameConfig::new(Scheme::BaselineStatic);
        game.tth = tth;
        game.rounds = cfg.rounds;
        game.batch = cfg.batch;
        game.attack_ratio = cfg.attack_ratio;
        game.seed = seed;
        game.sketch_epsilon = cfg.sketch_epsilon;
        game
    }
}

impl GameSubstrate for ScalarSubstrate {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn new_scratch(&self) -> CellScratch {
        CellScratch::new(Box::new(self.arena.clone()))
    }

    fn run_cell(
        &self,
        cfg: &EquilibriumConfig,
        tth: f64,
        defender: Box<dyn ThresholdPolicy>,
        attacker: Box<dyn AttackPolicy>,
        board: Option<PublicBoard>,
        seed: u64,
        scratch: &mut CellScratch,
    ) -> CellOutcome {
        let game = Self::game_config(cfg, tth, seed);
        let arena = scratch
            .arena
            .downcast_mut::<ScalarArena>()
            .expect("scalar scratch carries a ScalarArena");
        let run =
            run_game_with_scratch(&game, defender, attacker, board, arena, &mut scratch.engine);
        CellOutcome {
            collector_loss: -run.final_u_c / game.rounds as f64,
            attacker_gain: run.final_u_a / game.rounds as f64,
        }
    }

    fn closed_form(&self, cfg: &EquilibriumConfig) -> ClosedForm {
        ClosedForm::new(
            self.arena.sorted_pool().to_vec(),
            cfg.batch,
            cfg.attack_ratio,
            SurviveModel::PointMass,
        )
    }
}

/// The feature-vector collection substrate: the game is played on k-means
/// anomaly scores over a labelled dataset. The clean model (centroids +
/// score distribution) is fitted **once** and shared (`Arc`) into every
/// worker's arena — the fit used to be repeated per payoff cell, and was
/// the dominant cost of the ML grid.
#[derive(Debug, Clone)]
pub struct MlSubstrate {
    data: Dataset,
    model: Arc<MlModel>,
}

impl MlSubstrate {
    /// Builds the substrate over a labelled dataset.
    ///
    /// # Panics
    /// Panics if the dataset is unlabelled or smaller than two rows.
    #[must_use]
    pub fn new(data: Dataset) -> Self {
        let model = Arc::new(MlModel::fit(&data));
        Self { data, model }
    }
}

impl GameSubstrate for MlSubstrate {
    fn name(&self) -> &'static str {
        "ml"
    }

    fn new_scratch(&self) -> CellScratch {
        CellScratch::new(Box::new(MlArena::with_model(self.model.clone())))
    }

    fn run_cell(
        &self,
        cfg: &EquilibriumConfig,
        tth: f64,
        defender: Box<dyn ThresholdPolicy>,
        attacker: Box<dyn AttackPolicy>,
        board: Option<PublicBoard>,
        seed: u64,
        scratch: &mut CellScratch,
    ) -> CellOutcome {
        let ml = MlSimConfig {
            scheme: Scheme::BaselineStatic,
            tth,
            rounds: cfg.rounds,
            attack_ratio: cfg.attack_ratio,
            batch: cfg.batch,
            seed,
            red: 0.05,
            sketch_epsilon: cfg.sketch_epsilon,
        };
        let arena = scratch
            .arena
            .downcast_mut::<MlArena>()
            .expect("ml scratch carries an MlArena");
        let run = collect_poisoned_with_scratch(
            &self.data,
            &ml,
            defender,
            attacker,
            board,
            arena,
            &mut scratch.engine,
        );
        CellOutcome {
            collector_loss: -run.final_u_c / ml.rounds as f64,
            attacker_gain: run.final_u_a / ml.rounds as f64,
        }
    }

    fn closed_form(&self, cfg: &EquilibriumConfig) -> ClosedForm {
        ClosedForm::new(
            self.model.clean_scores().to_vec(),
            cfg.batch,
            cfg.attack_ratio,
            SurviveModel::PointMass,
        )
    }
}

/// The LDP report-stream substrate: honest users privatize with the
/// Piecewise Mechanism, attackers are protocol-compliant input
/// manipulators whose counterfeit input the response percentile maps to;
/// trimming cuts at calibration quantiles of the report stream.
#[derive(Debug, Clone)]
pub struct LdpSubstrate {
    population: Vec<f64>,
    epsilon: f64,
}

impl LdpSubstrate {
    /// Builds the substrate over `population` at privacy budget
    /// `epsilon`.
    ///
    /// # Panics
    /// Panics if the population is empty or `epsilon <= 0`.
    #[must_use]
    pub fn new(population: &[f64], epsilon: f64) -> Self {
        assert!(!population.is_empty(), "empty population");
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            population: population.to_vec(),
            epsilon,
        }
    }

    fn ldp_config(&self, cfg: &EquilibriumConfig, tth: f64, seed: u64) -> LdpSimConfig {
        LdpSimConfig {
            epsilon: self.epsilon,
            attack_ratio: cfg.attack_ratio,
            users_per_round: cfg.batch,
            rounds: cfg.rounds,
            soft: tth,
            hard: (tth - 0.1).max(0.0),
            red: 0.03,
            seed,
            sketch_epsilon: cfg.sketch_epsilon,
        }
    }
}

impl GameSubstrate for LdpSubstrate {
    fn name(&self) -> &'static str {
        "ldp"
    }

    fn new_scratch(&self) -> CellScratch {
        CellScratch::new(Box::new(LdpArena::new()))
    }

    fn run_cell(
        &self,
        cfg: &EquilibriumConfig,
        tth: f64,
        defender: Box<dyn ThresholdPolicy>,
        attacker: Box<dyn AttackPolicy>,
        board: Option<PublicBoard>,
        seed: u64,
        scratch: &mut CellScratch,
    ) -> CellOutcome {
        let ldp = self.ldp_config(cfg, tth, seed);
        let arena = scratch
            .arena
            .downcast_mut::<LdpArena>()
            .expect("ldp scratch carries an LdpArena");
        let run = run_ldp_collection_with_scratch(
            &self.population,
            LdpDefense::TitForTat,
            &ldp,
            defender,
            attacker,
            board,
            arena,
            &mut scratch.engine,
        );
        CellOutcome {
            collector_loss: -run.final_u_c / ldp.rounds as f64,
            attacker_gain: run.final_u_a / ldp.rounds as f64,
        }
    }

    fn closed_form(&self, cfg: &EquilibriumConfig) -> ClosedForm {
        // A deterministic calibration sample stands in for the honest
        // report distribution (4× the per-round users for a smoother
        // quantile table than any single cell sees).
        let calib = ldp_calibration(
            &self.population,
            self.epsilon,
            cfg.batch.max(1) * 4,
            derive_seed(cfg.master_seed, LDP_CALIB_STREAM),
        );
        ClosedForm::new(
            calib,
            cfg.batch,
            cfg.attack_ratio,
            SurviveModel::LdpPiecewise(Piecewise::new(self.epsilon)),
        )
    }
}

/// The standard benchmark pool (uniform scalar stream, the same pool the
/// sweep and the snapshot contract use).
#[must_use]
pub fn standard_pool() -> Vec<f64> {
    (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect()
}

/// The standard ML benchmark dataset: the two-blob GMM the snapshot
/// contract collects on (deterministic).
#[must_use]
pub fn standard_ml_dataset() -> Dataset {
    let spec = GmmSpec::new(vec![
        GaussianComponent::spherical(vec![-8.0, 0.0], 1.0, 1.0),
        GaussianComponent::spherical(vec![8.0, 0.0], 1.0, 1.0),
    ]);
    spec.generate("blobs", 600, &mut seeded_rng(5))
}

/// The standard LDP benchmark population (bounded skewed stream, the same
/// population the snapshot contract uses).
#[must_use]
pub fn standard_ldp_population() -> Vec<f64> {
    (0..4_000)
        .map(|i| (2.0 * ((i % 1000) as f64 / 1000.0) - 1.0) * 0.7)
        .collect()
}

/// The standard substrate instance for `kind` (the one `expt equilibrium
/// --substrate` runs on).
#[must_use]
pub fn standard_substrate(kind: SubstrateKind) -> Box<dyn GameSubstrate> {
    match kind {
        SubstrateKind::Scalar => Box::new(ScalarSubstrate::new(&standard_pool())),
        SubstrateKind::Ml => Box::new(MlSubstrate::new(standard_ml_dataset())),
        SubstrateKind::Ldp => Box::new(LdpSubstrate::new(&standard_ldp_population(), 3.0)),
    }
}

/// The estimator's output: the measured game, both equilibria, and the
/// cross-check metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalEquilibrium {
    /// Which substrate the game was played on.
    pub substrate: &'static str,
    /// Defender threshold atoms (rows).
    pub defender_atoms: Vec<f64>,
    /// Attacker response atoms (columns).
    pub attacker_atoms: Vec<f64>,
    /// Mean collector loss per cell, over the seed grid.
    pub mean_loss: Vec<Vec<f64>>,
    /// Per-cell CI half-widths (`z·sd/√seeds`).
    pub ci_half_width: Vec<Vec<f64>>,
    /// The mixed equilibrium of the *measured* matrix.
    pub empirical: MixedEquilibrium,
    /// The closed-form expected-loss matrix of the same finite game.
    pub analytic_matrix: Vec<Vec<f64>>,
    /// The mixed equilibrium of the analytic matrix.
    pub analytic: MixedEquilibrium,
    /// `|empirical value − analytic value|`.
    pub value_gap: f64,
    /// The estimator's own tolerance on the value gap: the worst cell CI
    /// (the minimax value is 1-Lipschitz in the sup-norm) plus both
    /// fictitious-play duality half-gaps.
    pub gap_tolerance: f64,
    /// Best deterministic commitment in the *measured* game:
    /// `min_i max_j mean_loss[i][j]`. Same matrix as `empirical`, so the
    /// difference to `empirical.value` is pure mixing benefit.
    pub pure_empirical_value: f64,
    /// Best deterministic commitment restricted to the atom grid under
    /// the analytic continuum model (follower riding *at* the threshold —
    /// a slightly more pessimistic damage model than the measured columns
    /// at `atom − response_margin`; reported as a benchmark, not used for
    /// the advantage).
    pub pure_grid_value: f64,
    /// The continuum Stackelberg loss (golden-section over the whole
    /// interval, follower riding the threshold).
    pub stackelberg_value: f64,
    /// Seeds per cell.
    pub seeds: usize,
}

impl EmpiricalEquilibrium {
    /// True if the empirical equilibrium value agrees with the analytic
    /// one within the estimator's own tolerance.
    #[must_use]
    pub fn within_tolerance(&self) -> bool {
        self.value_gap <= self.gap_tolerance
    }

    /// How much the mixed equilibrium improves on the best deterministic
    /// threshold *in the same measured game* (non-negative up to the
    /// fictitious-play gap, since mixing can only help the minimizer):
    /// the randomized-prediction-games advantage.
    #[must_use]
    pub fn randomization_advantage(&self) -> f64 {
        self.pure_empirical_value - self.empirical.value
    }
}

/// Per-repetition common-random-numbers seeds: one per seed index, shared
/// across cells so payoff differences isolate the strategy pair.
pub(crate) fn cell_seeds(cfg: &EquilibriumConfig) -> Vec<u64> {
    (0..cfg.seeds as u64)
        .map(|s| derive_seed(cfg.master_seed, s))
        .collect()
}

/// Measures a batch of pure `(threshold, response)` cells through the
/// sweep workers: one seeded engine run per (cell × seed), common random
/// numbers across cells, exactly the dense grid's per-cell estimator.
/// Returns per-cell `(mean loss, CI half-width)`. The double-oracle
/// solver uses this to price only the new row/column a growth step adds.
pub(crate) fn measure_cells(
    sub: &dyn GameSubstrate,
    cfg: &EquilibriumConfig,
    cells: &[(f64, f64)],
) -> Vec<(f64, f64)> {
    let per_cell = cfg.seeds;
    let seeds = cell_seeds(cfg);
    let losses = parallel_map_with(
        cells.len() * per_cell,
        cfg.workers,
        || sub.new_scratch(),
        |scratch, idx| {
            let (c, s) = (idx / per_cell, idx % per_cell);
            let (t_atom, a_atom) = cells[c];
            sub.run_cell(
                cfg,
                t_atom,
                Box::new(DefenderPolicy::Fixed { tth: t_atom }),
                Box::new(AdversaryPolicy::Fixed { percentile: a_atom }),
                None,
                seeds[s],
                scratch,
            )
            .collector_loss
        },
    );
    (0..cells.len())
        .map(|c| {
            let mut stats = OnlineStats::new();
            for s in 0..per_cell {
                stats.push(losses[c * per_cell + s]);
            }
            let se = (stats.sample_variance() / per_cell as f64).sqrt();
            (stats.mean(), cfg.z * se)
        })
        .collect()
}

/// Estimates one defender atom's payoff row (mean collector loss against
/// each attacker response, over the seed grid) through the sweep workers.
fn estimate_row(
    sub: &dyn GameSubstrate,
    cfg: &EquilibriumConfig,
    t_atom: f64,
    attacker_atoms: &[f64],
) -> Vec<f64> {
    let per_cell = cfg.seeds;
    let seeds = cell_seeds(cfg);
    let losses = parallel_map_with(
        attacker_atoms.len() * per_cell,
        cfg.workers,
        || sub.new_scratch(),
        |scratch, idx| {
            let (j, s) = (idx / per_cell, idx % per_cell);
            sub.run_cell(
                cfg,
                t_atom,
                Box::new(DefenderPolicy::Fixed { tth: t_atom }),
                Box::new(AdversaryPolicy::Fixed {
                    percentile: attacker_atoms[j],
                }),
                None,
                seeds[s],
                scratch,
            )
            .collector_loss
        },
    );
    (0..attacker_atoms.len())
        .map(|j| losses[j * per_cell..(j + 1) * per_cell].iter().sum::<f64>() / per_cell as f64)
        .collect()
}

/// Estimates the empirical payoff matrix on `sub` and solves both
/// equilibria.
///
/// The (row × column × seed) grid fans through [`parallel_map_with`];
/// each job's outcome depends only on its coordinates (never on the
/// worker scratch it reuses), so the result is identical for any worker
/// count.
///
/// # Panics
/// Panics if the configuration is degenerate.
#[must_use]
pub fn estimate_on(sub: &dyn GameSubstrate, cfg: &EquilibriumConfig) -> EmpiricalEquilibrium {
    cfg.validate();
    let rows = cfg.defender_atoms.len();
    let attacker_atoms = cfg.attacker_atoms();
    let cols = attacker_atoms.len();
    let per_cell = cfg.seeds;
    let n_jobs = rows * cols * per_cell;

    // One seed per repetition, shared across cells (common random
    // numbers): cell payoffs differ only through the strategy pair, which
    // sharpens every cross-cell comparison the solver makes.
    let seeds = cell_seeds(cfg);

    let losses = parallel_map_with(
        n_jobs,
        cfg.workers,
        || sub.new_scratch(),
        |scratch, idx| {
            let cell = idx / per_cell;
            let (i, j) = (cell / cols, cell % cols);
            let t_atom = cfg.defender_atoms[i];
            sub.run_cell(
                cfg,
                t_atom,
                Box::new(DefenderPolicy::Fixed { tth: t_atom }),
                Box::new(AdversaryPolicy::Fixed {
                    percentile: attacker_atoms[j],
                }),
                None,
                seeds[idx % per_cell],
                scratch,
            )
            .collector_loss
        },
    );

    let mut mean_loss = vec![vec![0.0; cols]; rows];
    let mut ci_half_width = vec![vec![0.0; cols]; rows];
    let mut worst_ci = 0.0_f64;
    for i in 0..rows {
        for j in 0..cols {
            let mut stats = OnlineStats::new();
            let cell = i * cols + j;
            for s in 0..per_cell {
                stats.push(losses[cell * per_cell + s]);
            }
            let se = (stats.sample_variance() / per_cell as f64).sqrt();
            mean_loss[i][j] = stats.mean();
            ci_half_width[i][j] = cfg.z * se;
            worst_ci = worst_ci.max(ci_half_width[i][j]);
        }
    }

    let empirical_game = MatrixGame::new(mean_loss.clone()).expect("finite means");
    let empirical = empirical_game.solve(cfg.fp_iterations);
    let pure_empirical_value = empirical_game.pure_commitment_value();

    let model = sub.closed_form(cfg);
    let analytic_matrix = analytic_loss_matrix(&model, cfg);
    let analytic_game = MatrixGame::new(analytic_matrix.clone()).expect("finite analytic losses");
    let analytic = analytic_game.solve(cfg.fp_iterations);

    let (stackelberg_value, pure_grid_value) = analytic_continuum(&model, cfg);

    let value_gap = (empirical.value - analytic.value).abs();
    let gap_tolerance = worst_ci + 0.5 * (empirical.gap() + analytic.gap());

    EmpiricalEquilibrium {
        substrate: sub.name(),
        defender_atoms: cfg.defender_atoms.clone(),
        attacker_atoms,
        mean_loss,
        ci_half_width,
        empirical,
        analytic_matrix,
        analytic,
        value_gap,
        gap_tolerance,
        pure_empirical_value,
        pure_grid_value,
        stackelberg_value,
        seeds: per_cell,
    }
}

/// Scalar-substrate convenience wrapper around [`estimate_on`] (the PR 3
/// entry point).
///
/// # Panics
/// Panics if the pool is empty or the configuration is degenerate.
#[must_use]
pub fn estimate(pool: &[f64], cfg: &EquilibriumConfig) -> EmpiricalEquilibrium {
    estimate_on(&ScalarSubstrate::new(pool), cfg)
}

/// The closed-form expected loss of the finite threshold game on a
/// substrate's model: survival-weighted percentile damage plus the benign
/// trim overhead.
fn analytic_loss_matrix(model: &ClosedForm, cfg: &EquilibriumConfig) -> Vec<Vec<f64>> {
    let attacker_atoms = cfg.attacker_atoms();
    cfg.defender_atoms
        .iter()
        .map(|&t| attacker_atoms.iter().map(|&a| model.loss(t, a)).collect())
        .collect()
}

/// The continuum Stackelberg benchmark: leader loss
/// `q·x + (1−q)·tail(x)` with the follower riding the threshold, solved
/// over the hull of the atom grid. Returns `(continuum value, best pure
/// commitment restricted to the atoms)`.
fn analytic_continuum(model: &ClosedForm, cfg: &EquilibriumConfig) -> (f64, f64) {
    let x_l = cfg.defender_atoms[0] - cfg.response_margin;
    let x_r = *cfg.defender_atoms.last().expect("non-empty atoms");
    let space = StrategySpace::new(x_l, x_r).expect("margin below the lowest atom");
    let poison_share = model.poison_share;
    let damage = move |x: f64| poison_share * x;
    let overhead = |x: f64| model.overhead(x);
    let solver = StackelbergSolver::new(space, damage, overhead);
    let continuum = solver.solve().map_or(f64::NAN, |eq| eq.leader_loss);
    let pure_grid = solver.pure_commitment_value(&cfg.defender_atoms);
    (continuum, pure_grid)
}

/// The quality-standard anchor the played-mixture paths use: the lowest
/// defender atom (nothing in the loss accounting reads it).
fn play_tth(cfg: &EquilibriumConfig) -> f64 {
    cfg.defender_atoms[0]
}

/// Realized play of a mixed defender strategy on a substrate: mean
/// per-round loss over the seed grid, against each pure attacker response
/// column.
///
/// Each (column × seed) cell builds a fresh [`RandomizedDefender`] from
/// `row_strategy` and runs it through the engine — the policy sub-stream
/// derives from the cell seed, so the fan-out is deterministic for any
/// worker count. This is the "sweep-parallel ≡ sequential for randomized
/// policies" surface.
///
/// # Panics
/// Panics if `row_strategy` does not match the defender atoms or has no
/// mass.
#[must_use]
pub fn play_mixed_vs_columns_on(
    sub: &dyn GameSubstrate,
    cfg: &EquilibriumConfig,
    row_strategy: &[f64],
) -> Vec<OnlineStats> {
    cfg.validate();
    assert_eq!(
        row_strategy.len(),
        cfg.defender_atoms.len(),
        "strategy/atom mismatch"
    );
    let attacker_atoms = cfg.attacker_atoms();
    let cols = attacker_atoms.len();
    let per_cell = cfg.seeds;
    let seeds = cell_seeds(cfg);
    let losses = parallel_map_with(
        cols * per_cell,
        cfg.workers,
        || sub.new_scratch(),
        |scratch, idx| {
            let (j, s) = (idx / per_cell, idx % per_cell);
            let defender = RandomizedDefender::new(&cfg.defender_atoms, row_strategy)
                .expect("validated strategy");
            sub.run_cell(
                cfg,
                play_tth(cfg),
                Box::new(defender),
                Box::new(AdversaryPolicy::Fixed {
                    percentile: attacker_atoms[j],
                }),
                None,
                seeds[s],
                scratch,
            )
            .collector_loss
        },
    );
    (0..cols)
        .map(|j| {
            let mut stats = OnlineStats::new();
            for s in 0..per_cell {
                stats.push(losses[j * per_cell + s]);
            }
            stats
        })
        .collect()
}

/// Scalar wrapper around [`play_mixed_vs_columns_on`].
///
/// # Panics
/// Panics on a degenerate configuration or strategy.
#[must_use]
pub fn play_mixed_vs_columns(
    pool: &[f64],
    cfg: &EquilibriumConfig,
    row_strategy: &[f64],
) -> Vec<OnlineStats> {
    play_mixed_vs_columns_on(&ScalarSubstrate::new(pool), cfg, row_strategy)
}

/// Realized play of the solved equilibrium against the board-driven
/// [`AdaptiveAttacker`] on a substrate: mean per-round loss over the seed
/// grid.
///
/// # Panics
/// Panics on a degenerate configuration or strategy.
#[must_use]
pub fn play_vs_adaptive_on(
    sub: &dyn GameSubstrate,
    cfg: &EquilibriumConfig,
    row_strategy: &[f64],
) -> OnlineStats {
    cfg.validate();
    let per_cell = cfg.seeds;
    let seeds = cell_seeds(cfg);
    let losses = parallel_map_with(
        per_cell,
        cfg.workers,
        || sub.new_scratch(),
        |scratch, s| {
            let seed = seeds[s];
            let defender = RandomizedDefender::new(&cfg.defender_atoms, row_strategy)
                .expect("validated strategy");
            let board = PublicBoard::new();
            let attacker = AdaptiveAttacker::new(board.clone(), cfg.response_margin, 0.99);
            sub.run_cell(
                cfg,
                play_tth(cfg),
                Box::new(defender),
                Box::new(attacker),
                Some(board),
                seed,
                scratch,
            )
            .collector_loss
        },
    );
    let mut stats = OnlineStats::new();
    for loss in losses {
        stats.push(loss);
    }
    stats
}

/// Scalar wrapper around [`play_vs_adaptive_on`].
///
/// # Panics
/// Panics on a degenerate configuration or strategy.
#[must_use]
pub fn play_vs_adaptive(
    pool: &[f64],
    cfg: &EquilibriumConfig,
    row_strategy: &[f64],
) -> OnlineStats {
    play_vs_adaptive_on(&ScalarSubstrate::new(pool), cfg, row_strategy)
}

/// Outcome of playing the solved mixture against the no-regret
/// [`Exp3Attacker`] over a long horizon.
#[derive(Debug, Clone)]
pub struct Exp3Play {
    /// The attacker's realized mean per-round payoff, across seeds.
    pub attacker_payoff: OnlineStats,
    /// The collector's realized mean per-round loss, across seeds.
    pub collector_loss: OnlineStats,
    /// The horizon the attacker was tuned to and played for.
    pub rounds: usize,
    /// The certified average regret bound at that horizon (payoff units).
    pub regret_bound: f64,
}

/// Plays the solved defender mixture against [`Exp3Attacker`] over
/// `rounds` rounds (per seed) on a substrate. The attacker's response set
/// is the game's column set; its payoff bound is the substrate's poison
/// share (the maximum per-round percentile damage), and its private
/// sampling stream derives from the cell seed — replays are exact and
/// worker-count independent.
///
/// The equilibrium robustness contract: the attacker's long-run average
/// payoff can exceed the solved game value by at most the certified
/// regret bound (its best fixed response in hindsight is one of the
/// measured columns, whose value against the mixture is at most the
/// equilibrium upper bound).
///
/// # Panics
/// Panics on a degenerate configuration or strategy.
#[must_use]
pub fn play_vs_exp3(
    sub: &dyn GameSubstrate,
    cfg: &EquilibriumConfig,
    row_strategy: &[f64],
    rounds: usize,
) -> Exp3Play {
    cfg.validate();
    assert!(rounds > 0, "need at least one round");
    let attacker_atoms = cfg.attacker_atoms();
    let payoff_bound = batch_poison_share(cfg.batch, cfg.attack_ratio).max(1e-9);
    let mut play_cfg = cfg.clone();
    play_cfg.rounds = rounds;
    let per_cell = cfg.seeds;
    let seeds = cell_seeds(cfg);
    let outcomes = parallel_map_with(
        per_cell,
        cfg.workers,
        || sub.new_scratch(),
        |scratch, s| {
            let seed = seeds[s];
            let defender = RandomizedDefender::new(&cfg.defender_atoms, row_strategy)
                .expect("validated strategy");
            let attacker = Exp3Attacker::new(
                &attacker_atoms,
                rounds,
                payoff_bound,
                derive_seed(seed, EXP3_SEED_STREAM),
            )
            .expect("validated response set");
            sub.run_cell(
                &play_cfg,
                play_tth(cfg),
                Box::new(defender),
                Box::new(attacker),
                None,
                seed,
                scratch,
            )
        },
    );
    let mut attacker_payoff = OnlineStats::new();
    let mut collector_loss = OnlineStats::new();
    for out in outcomes {
        attacker_payoff.push(out.attacker_gain);
        collector_loss.push(out.collector_loss);
    }
    let regret_bound = Exp3Attacker::new(&attacker_atoms, rounds, payoff_bound, 0)
        .expect("validated response set")
        .average_regret_bound(rounds);
    Exp3Play {
        attacker_payoff,
        collector_loss,
        rounds,
        regret_bound,
    }
}

/// Configuration of a defender support optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupportOptConfig {
    /// Coordinate-descent passes over the atom set.
    pub passes: usize,
    /// Golden-section probes per atom per pass.
    pub golden_iterations: usize,
    /// Fictitious-play iterations for the inner matrix solves (smaller
    /// than the headline solves — the optimizer only needs value
    /// comparisons).
    pub fp_iterations: usize,
}

impl SupportOptConfig {
    /// Smoke-scale refinement (one pass, few probes).
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            passes: 1,
            golden_iterations: 6,
            fp_iterations: 20_000,
        }
    }

    /// Full refinement.
    #[must_use]
    pub fn default_opt() -> Self {
        Self {
            passes: 2,
            golden_iterations: 10,
            fp_iterations: 50_000,
        }
    }
}

/// Result of a defender support optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportOptimization {
    /// The fixed-grid starting atoms.
    pub initial_atoms: Vec<f64>,
    /// Solved game value on the starting atoms (measured matrix).
    pub initial_value: f64,
    /// The refined atom placements.
    pub refined_atoms: Vec<f64>,
    /// Solved game value on the refined placements — never worse than
    /// `initial_value` (moves are accepted only on strict improvement).
    pub refined_value: f64,
    /// The defender mixture solved on the refined placements.
    pub refined_strategy: Vec<f64>,
    /// Payoff-row estimations performed (each one a `columns × seeds`
    /// sweep through the workers).
    pub row_estimations: usize,
    /// Accepted atom moves.
    pub moved: usize,
}

/// Refines the defender's atom *placements* by coordinate descent: each
/// atom in turn is golden-sectioned inside the bracket between its
/// neighbours, with the candidate's payoff row re-estimated through the
/// sweep workers ([`parallel_map_with`]) and the game re-solved against the
/// *fixed* attacker response columns of the starting grid. Moves are
/// accepted only on strict improvement at the line-search precision, and
/// the endpoint values are re-solved at the headline precision
/// (`cfg.fp_iterations`); in the edge case where the coarse acceptances
/// do not survive the fine solve, the optimizer reverts to the starting
/// grid — so the refined support is *never* worse than the fixed grid,
/// the strategy-space layer of §III-C2 taken beyond a predefined
/// support.
///
/// Deterministic for any worker count: probe sequences depend only on the
/// configuration, and every engine run is seed-addressed. Payoff rows are
/// memoized by atom value (a row depends only on its placement), so
/// rejected line searches never re-estimate the row they started from.
///
/// # Panics
/// Panics on a degenerate configuration.
#[must_use]
pub fn optimize_support(
    sub: &dyn GameSubstrate,
    cfg: &EquilibriumConfig,
    opt: &SupportOptConfig,
) -> SupportOptimization {
    cfg.validate();
    let attacker_atoms = cfg.attacker_atoms();
    let atoms = cfg.defender_atoms.clone();
    let spacing = (atoms[atoms.len() - 1] - atoms[0]) / (atoms.len() - 1).max(1) as f64;
    let bounds = (
        (atoms[0] - spacing).max(cfg.response_margin),
        (atoms[atoms.len() - 1] + spacing).min(1.0),
    );

    // Row memo: atom placement → estimated payoff row. A row depends only
    // on its atom's placement (columns and seeds are fixed), so probes,
    // accepted moves and the refiner's post-search re-evaluation of an
    // unchanged atom all hit the memo instead of re-running the sweep.
    let mut rows_by_atom: std::collections::HashMap<u64, Vec<f64>> =
        std::collections::HashMap::new();
    let mut row_estimations = 0usize;
    let mut row_for = |t: f64| -> Vec<f64> {
        rows_by_atom
            .entry(t.to_bits())
            .or_insert_with(|| {
                row_estimations += 1;
                estimate_row(sub, cfg, t, &attacker_atoms)
            })
            .clone()
    };
    let solve_placement = |rows: Vec<Vec<f64>>, fp: usize| -> (f64, Vec<f64>) {
        let eq = MatrixGame::new(rows).expect("finite means").solve(fp);
        (eq.value, eq.row_strategy)
    };
    let initial_rows: Vec<Vec<f64>> = atoms.iter().map(|&t| row_for(t)).collect();
    let (initial_value, initial_strategy) =
        solve_placement(initial_rows.clone(), cfg.fp_iterations);

    let refined = refine_placements(
        &atoms,
        bounds,
        cfg.response_margin,
        opt.passes,
        opt.golden_iterations,
        |candidate, _moved| {
            let rows: Vec<Vec<f64>> = candidate.iter().map(|&t| row_for(t)).collect();
            solve_placement(rows, opt.fp_iterations).0
        },
    );

    let refined_rows: Vec<Vec<f64>> = refined.atoms.iter().map(|&t| row_for(t)).collect();
    let (refined_value, refined_strategy) = solve_placement(refined_rows, cfg.fp_iterations);
    if refined_value > initial_value {
        // The coarse line-search acceptances did not survive the fine
        // solve: keep the fixed grid (the contract is "never worse").
        return SupportOptimization {
            initial_atoms: atoms.clone(),
            initial_value,
            refined_atoms: atoms,
            refined_value: initial_value,
            refined_strategy: initial_strategy,
            row_estimations,
            moved: 0,
        };
    }
    SupportOptimization {
        initial_atoms: atoms,
        initial_value,
        refined_atoms: refined.atoms,
        refined_value,
        refined_strategy,
        row_estimations,
        moved: refined.moved,
    }
}

/// The `expt equilibrium` experiment report on the scalar substrate (the
/// PR 3 entry point).
///
/// # Panics
/// Panics on a degenerate configuration.
#[must_use]
pub fn equilibrium_report(cfg: &EquilibriumConfig) -> String {
    equilibrium_report_for(SubstrateKind::Scalar, cfg)
}

/// The `expt equilibrium` experiment report, reading the substrate and
/// grid scale from the environment (`TRIMGAME_EQ_SUBSTRATE`,
/// `TRIMGAME_EQ_SMOKE`, `TRIMGAME_EQ_SEEDS`, `TRIMGAME_SWEEP_THREADS`).
///
/// # Panics
/// Panics on an unknown substrate name.
#[must_use]
pub fn equilibrium_report_from_env() -> String {
    let kind = match std::env::var("TRIMGAME_EQ_SUBSTRATE") {
        Ok(name) => SubstrateKind::parse(&name)
            .unwrap_or_else(|| panic!("unknown substrate {name:?} (expected scalar|ml|ldp)")),
        Err(_) => SubstrateKind::Scalar,
    };
    let cfg = EquilibriumConfig::from_env_for(kind);
    // `TRIMGAME_EQ_ORACLE=1` (the `--double-oracle` flag) swaps the dense
    // grid for the best-response-oracle solver.
    let oracle = std::env::var("TRIMGAME_EQ_ORACLE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    if oracle {
        crate::double_oracle::double_oracle_report_for(kind, &cfg)
    } else {
        equilibrium_report_for(kind, &cfg)
    }
}

/// The `expt equilibrium` experiment report on `kind`'s standard
/// substrate.
///
/// # Panics
/// Panics on a degenerate configuration.
#[must_use]
pub fn equilibrium_report_for(kind: SubstrateKind, cfg: &EquilibriumConfig) -> String {
    let sub = standard_substrate(kind);
    let est = estimate_on(&*sub, cfg);
    let rows = est.defender_atoms.len();
    let cols = est.attacker_atoms.len();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Empirical equilibrium [{} substrate]: {rows}x{cols} threshold game, {} seeds/cell, {} rounds x {} batch ==",
        est.substrate, est.seeds, cfg.rounds, cfg.batch
    );
    if let Some(eps) = cfg.sketch_epsilon {
        let _ = writeln!(
            out,
            "sketch-native defender: cuts resolved from a GK quantile sketch, rank error epsilon = {eps}"
        );
    }
    let _ = writeln!(
        out,
        "collector loss per round, mean +/- {:.2}sigma CI (rows: defender atoms; cols: attacker just-below responses)",
        cfg.z
    );
    let _ = write!(out, "{:>8}", "");
    for a in &est.attacker_atoms {
        let _ = write!(out, " {a:>15.3}");
    }
    let _ = writeln!(out);
    for i in 0..rows {
        let _ = write!(out, "{:>8.3}", est.defender_atoms[i]);
        for j in 0..cols {
            let _ = write!(
                out,
                " {:>7.4}+/-{:>6.4}",
                est.mean_loss[i][j], est.ci_half_width[i][j]
            );
        }
        let _ = writeln!(out);
    }

    let weights = |w: &[f64]| {
        w.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "empirical equilibrium: value {:.5} (bounds [{:.5}, {:.5}], fp gap {:.1e})",
        est.empirical.value,
        est.empirical.lower,
        est.empirical.upper,
        est.empirical.gap()
    );
    let _ = writeln!(
        out,
        "  defender mix [{}] | attacker mix [{}]",
        weights(&est.empirical.row_strategy),
        weights(&est.empirical.col_strategy)
    );
    let _ = writeln!(
        out,
        "analytic equilibrium:  value {:.5} (bounds [{:.5}, {:.5}], fp gap {:.1e})",
        est.analytic.value,
        est.analytic.lower,
        est.analytic.upper,
        est.analytic.gap()
    );
    let _ = writeln!(
        out,
        "  defender mix [{}] | attacker mix [{}]",
        weights(&est.analytic.row_strategy),
        weights(&est.analytic.col_strategy)
    );
    let _ = writeln!(
        out,
        "value gap {:.5} vs estimator tolerance {:.5} -> {}",
        est.value_gap,
        est.gap_tolerance,
        if est.within_tolerance() {
            "WITHIN CI"
        } else {
            "OUTSIDE CI"
        }
    );
    let _ = writeln!(
        out,
        "pure commitment (measured game) {:.5} -> randomization advantage {:.5}",
        est.pure_empirical_value,
        est.randomization_advantage()
    );
    let _ = writeln!(
        out,
        "analytic benchmarks: pure commitment on the grid {:.5} | continuum Stackelberg {:.5}",
        est.pure_grid_value, est.stackelberg_value
    );

    // Play the solved mixture through the engine.
    let realized = play_mixed_vs_columns_on(&*sub, cfg, &est.empirical.row_strategy);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "played equilibrium (RandomizedDefender on the solved mix) vs pure responses:"
    );
    for (j, stats) in realized.iter().enumerate() {
        let predicted: f64 = (0..rows)
            .map(|i| est.empirical.row_strategy[i] * est.mean_loss[i][j])
            .sum();
        let _ = writeln!(
            out,
            "  vs a={:.3}: realized {:.5} (sd {:.5}) | matrix prediction {:.5}",
            est.attacker_atoms[j],
            stats.mean(),
            stats.sample_variance().sqrt(),
            predicted
        );
    }
    let adaptive = play_vs_adaptive_on(&*sub, cfg, &est.empirical.row_strategy);
    let _ = writeln!(
        out,
        "  vs AdaptiveAttacker (board-driven best response): realized {:.5} (sd {:.5}); equilibrium upper bound {:.5}",
        adaptive.mean(),
        adaptive.sample_variance().sqrt(),
        est.empirical.upper
    );

    // No-regret robustness: the Exp3 bandit over the response columns.
    let exp3_rounds = (cfg.rounds * 30).max(300);
    let exp3 = play_vs_exp3(&*sub, cfg, &est.empirical.row_strategy, exp3_rounds);
    let _ = writeln!(
        out,
        "  vs Exp3Attacker ({} rounds, no-regret bandit): avg payoff {:.5} <= value {:.5} + regret bound {:.5} -> {}",
        exp3.rounds,
        exp3.attacker_payoff.mean(),
        est.empirical.value,
        exp3.regret_bound,
        if exp3.attacker_payoff.mean() <= est.empirical.value + exp3.regret_bound {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    // Price the sketch's rank error into the game: the defender's cut
    // carries up to ε of quantile slack the adversary can hide inside,
    // so the equilibrium value traces how much evasion headroom each ε
    // buys relative to exact cuts.
    if let Some(eps) = cfg.sketch_epsilon {
        let mut exact_cfg = cfg.clone();
        exact_cfg.sketch_epsilon = None;
        let exact = estimate_on(&*sub, &exact_cfg).empirical.value;
        let mut grid: Vec<f64> = [0.5 * eps, eps, 2.0 * eps]
            .into_iter()
            .filter(|e| *e > 0.0 && *e < 0.5)
            .collect();
        grid.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "equilibrium value vs sketch epsilon (exact-cut baseline {exact:.5}):"
        );
        for e in grid {
            let value = if (e - eps).abs() < 1e-12 {
                est.empirical.value
            } else {
                let mut sweep_cfg = cfg.clone();
                sweep_cfg.sketch_epsilon = Some(e);
                estimate_on(&*sub, &sweep_cfg).empirical.value
            };
            let _ = writeln!(
                out,
                "  epsilon {e:.4}: value {value:.5} (delta vs exact {:+.5})",
                value - exact
            );
        }
    }

    // Support optimization: refine the atom placements on the scalar
    // substrate (the optimizer is substrate-generic; the report runs it
    // where the closed form makes the improvement interpretable).
    if kind == SubstrateKind::Scalar {
        let opt = if cfg.seeds <= 4 {
            SupportOptConfig::smoke()
        } else {
            SupportOptConfig::default_opt()
        };
        let refined = optimize_support(&*sub, cfg, &opt);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "support optimization ({} pass(es), {} row re-estimations, {} moves):",
            opt.passes, refined.row_estimations, refined.moved
        );
        let _ = writeln!(
            out,
            "  atoms [{}] value {:.5} -> atoms [{}] value {:.5} (improvement {:.5})",
            weights(&refined.initial_atoms),
            refined.initial_value,
            weights(&refined.refined_atoms),
            refined.refined_value,
            refined.initial_value - refined.refined_value
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EquilibriumConfig {
        EquilibriumConfig {
            defender_atoms: vec![0.88, 0.92, 0.96],
            response_margin: 0.01,
            seeds: 3,
            master_seed: 7,
            rounds: 4,
            batch: 200,
            attack_ratio: 0.2,
            workers: 1,
            fp_iterations: 20_000,
            z: 3.0,
            sketch_epsilon: None,
        }
    }

    #[test]
    fn estimate_is_scheduling_independent() {
        let pool = standard_pool();
        let cfg = tiny();
        let sequential = estimate(&pool, &cfg);
        for workers in [2, 4, 7] {
            let mut c = cfg.clone();
            c.workers = workers;
            let parallel = estimate(&pool, &c);
            assert_eq!(
                sequential.mean_loss, parallel.mean_loss,
                "workers={workers}"
            );
            assert_eq!(sequential.empirical, parallel.empirical);
            assert_eq!(sequential.analytic, parallel.analytic);
        }
    }

    #[test]
    fn randomized_play_is_scheduling_independent() {
        // Satellite contract: sweep-parallel == sequential holds for
        // randomized (sub-stream-sampling) policies too.
        let pool = standard_pool();
        let cfg = tiny();
        let mix = [0.2, 0.5, 0.3];
        let seq: Vec<f64> = play_mixed_vs_columns(&pool, &cfg, &mix)
            .iter()
            .map(OnlineStats::mean)
            .collect();
        for workers in [2, 5] {
            let mut c = cfg.clone();
            c.workers = workers;
            let par: Vec<f64> = play_mixed_vs_columns(&pool, &c, &mix)
                .iter()
                .map(OnlineStats::mean)
                .collect();
            assert_eq!(seq, par, "workers={workers}");
        }
        let a = play_vs_adaptive(&pool, &cfg, &mix);
        let mut c = cfg.clone();
        c.workers = 3;
        let b = play_vs_adaptive(&pool, &c, &mix);
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn empirical_value_matches_analytic_within_ci() {
        // Satellite contract: on the 3x3 smoke game the estimated
        // equilibrium value falls within the estimator's own confidence
        // interval of the analytic value.
        let pool = standard_pool();
        let est = estimate(&pool, &EquilibriumConfig::smoke());
        assert_eq!(est.substrate, "scalar");
        assert!(
            est.within_tolerance(),
            "gap {} tolerance {}",
            est.value_gap,
            est.gap_tolerance
        );
        // The matrix means themselves sit near the closed form. Per-cell
        // CIs estimated from 2 samples are too noisy for a cellwise
        // assertion, so run this part with enough seeds for a stable
        // standard-error estimate.
        let mut cfg = EquilibriumConfig::smoke();
        cfg.seeds = 8;
        let est = estimate(&pool, &cfg);
        for i in 0..est.defender_atoms.len() {
            for j in 0..est.attacker_atoms.len() {
                let diff = (est.mean_loss[i][j] - est.analytic_matrix[i][j]).abs();
                assert!(
                    diff <= est.ci_half_width[i][j] + 1e-9,
                    "cell ({i},{j}): diff {diff} ci {}",
                    est.ci_half_width[i][j]
                );
            }
        }
        assert!(est.within_tolerance());
    }

    #[test]
    fn randomization_advantage_is_nonnegative() {
        let pool = standard_pool();
        let est = estimate(&pool, &EquilibriumConfig::smoke());
        // Mixing can only help the defender in the same measured game
        // (up to the fictitious-play gap).
        assert!(
            est.randomization_advantage() >= -est.empirical.gap() - 1e-9,
            "advantage {}",
            est.randomization_advantage()
        );
        // On this game the advantage is strictly positive: every pure row
        // is exploitable by some just-below response.
        assert!(est.randomization_advantage() > 0.0);
        // And the grid-restricted pure value can never beat the continuum.
        assert!(est.pure_grid_value >= est.stackelberg_value - 1e-9);
    }

    #[test]
    fn report_renders_and_is_deterministic() {
        let cfg = tiny();
        let a = equilibrium_report(&cfg);
        let b = equilibrium_report(&cfg);
        assert_eq!(a, b);
        assert!(a.contains("empirical equilibrium"));
        assert!(a.contains("AdaptiveAttacker"));
        assert!(a.contains("Exp3Attacker"));
        assert!(a.contains("support optimization"));
        assert!(a.contains("WITHIN CI") || a.contains("OUTSIDE CI"));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_atoms_rejected() {
        let mut cfg = tiny();
        cfg.defender_atoms = vec![0.95, 0.9];
        let _ = estimate(&standard_pool(), &cfg);
    }

    #[test]
    fn ml_substrate_equilibrium_within_ci_and_robust() {
        // Tentpole contract: the pipeline runs end-to-end on the ML
        // substrate — value gap within the estimator's CI, and the played
        // mixture's loss against the adaptive attacker stays below the
        // solved equilibrium upper bound (plus its own standard error).
        let sub = MlSubstrate::new(standard_ml_dataset());
        let cfg = EquilibriumConfig::smoke_for(SubstrateKind::Ml);
        let est = estimate_on(&sub, &cfg);
        assert_eq!(est.substrate, "ml");
        assert!(
            est.within_tolerance(),
            "gap {} tolerance {}",
            est.value_gap,
            est.gap_tolerance
        );
        let adaptive = play_vs_adaptive_on(&sub, &cfg, &est.empirical.row_strategy);
        let slack = cfg.z * (adaptive.sample_variance() / cfg.seeds as f64).sqrt();
        assert!(
            adaptive.mean() <= est.empirical.upper + slack,
            "adaptive {} vs upper {} (+{slack})",
            adaptive.mean(),
            est.empirical.upper
        );
    }

    #[test]
    fn ldp_substrate_equilibrium_within_ci_and_robust() {
        // Same contract on the LDP substrate; here the closed form is the
        // Piecewise Mechanism's exact CDF, so survival is probabilistic.
        let sub = LdpSubstrate::new(&standard_ldp_population(), 3.0);
        let cfg = EquilibriumConfig::smoke_for(SubstrateKind::Ldp);
        let est = estimate_on(&sub, &cfg);
        assert_eq!(est.substrate, "ldp");
        assert!(
            est.within_tolerance(),
            "gap {} tolerance {}",
            est.value_gap,
            est.gap_tolerance
        );
        // Survival under an LDP cut is genuinely interior: the analytic
        // matrix must contain probabilities strictly between 0 and 1.
        let model = sub.closed_form(&cfg);
        let interior = cfg
            .defender_atoms
            .iter()
            .flat_map(|&t| {
                cfg.attacker_atoms()
                    .iter()
                    .map(move |&a| (t, a))
                    .collect::<Vec<_>>()
            })
            .any(|(t, a)| {
                let p = model.survive_prob(a, t);
                p > 0.01 && p < 0.99
            });
        assert!(interior, "LDP survival should be probabilistic");
        let adaptive = play_vs_adaptive_on(&sub, &cfg, &est.empirical.row_strategy);
        let slack = cfg.z * (adaptive.sample_variance() / cfg.seeds as f64).sqrt();
        assert!(
            adaptive.mean() <= est.empirical.upper + slack,
            "adaptive {} vs upper {} (+{slack})",
            adaptive.mean(),
            est.empirical.upper
        );
    }

    #[test]
    fn substrate_estimates_are_scheduling_independent() {
        // The ML and LDP cells fan through the same parallel_map; their
        // outcomes must be identical for any worker count.
        let ml = MlSubstrate::new(standard_ml_dataset());
        let mut cfg = EquilibriumConfig::smoke_for(SubstrateKind::Ml);
        cfg.seeds = 2;
        cfg.rounds = 3;
        cfg.batch = 100;
        cfg.workers = 1;
        let seq = estimate_on(&ml, &cfg);
        cfg.workers = 4;
        let par = estimate_on(&ml, &cfg);
        assert_eq!(seq.mean_loss, par.mean_loss);
        assert_eq!(seq.empirical, par.empirical);

        let ldp = LdpSubstrate::new(&standard_ldp_population(), 3.0);
        let mut cfg = EquilibriumConfig::smoke_for(SubstrateKind::Ldp);
        cfg.seeds = 2;
        cfg.rounds = 2;
        cfg.batch = 200;
        cfg.workers = 1;
        let seq = estimate_on(&ldp, &cfg);
        cfg.workers = 5;
        let par = estimate_on(&ldp, &cfg);
        assert_eq!(seq.mean_loss, par.mean_loss);
        assert_eq!(seq.empirical, par.empirical);
    }

    #[test]
    fn sketch_native_estimates_are_deterministic_and_priced() {
        // Acceptance contract for the sketch-native substrates: with the
        // sketch-ε knob on, the ML and LDP estimates stay scheduling
        // independent (the sketch build consumes no randomness), and the
        // equilibrium value responds to ε — the defender's cut carries
        // rank slack, so the value differs from the exact-cut game.
        for kind in [SubstrateKind::Ml, SubstrateKind::Ldp] {
            let sub = standard_substrate(kind);
            let mut cfg = EquilibriumConfig::smoke_for(kind);
            cfg.seeds = 2;
            cfg.rounds = 2;
            cfg.batch = if kind == SubstrateKind::Ml { 100 } else { 200 };
            cfg.sketch_epsilon = Some(0.05);
            cfg.workers = 1;
            let seq = estimate_on(&*sub, &cfg);
            cfg.workers = 8;
            let par = estimate_on(&*sub, &cfg);
            assert_eq!(seq.mean_loss, par.mean_loss, "{kind:?} sketch determinism");
            assert_eq!(seq.empirical, par.empirical, "{kind:?} sketch determinism");

            cfg.sketch_epsilon = None;
            let exact = estimate_on(&*sub, &cfg);
            assert!(
                seq.mean_loss != exact.mean_loss,
                "{kind:?}: a 5% rank error should perturb at least one payoff cell"
            );
        }
    }

    #[test]
    fn sketch_report_prices_epsilon() {
        // The report carries the value-vs-ε curve when the sketch-native
        // defender is on.
        let mut cfg = tiny();
        cfg.seeds = 2;
        cfg.rounds = 2;
        cfg.batch = 120;
        cfg.sketch_epsilon = Some(0.04);
        let report = equilibrium_report_for(SubstrateKind::Ml, &cfg);
        assert!(report.contains("sketch-native defender"), "{report}");
        assert!(
            report.contains("equilibrium value vs sketch epsilon"),
            "{report}"
        );
        assert!(report.contains("epsilon 0.0400"), "{report}");
        assert!(report.contains("epsilon 0.0800"), "{report}");
    }

    #[test]
    fn exp3_average_payoff_stays_below_value_plus_regret() {
        // Acceptance contract (fixed seed): the no-regret attacker's
        // long-run average payoff converges below the solved game value
        // plus its certified regret bound.
        let sub = ScalarSubstrate::new(&standard_pool());
        let cfg = EquilibriumConfig::smoke();
        let est = estimate_on(&sub, &cfg);
        let rounds = 400;
        let play = play_vs_exp3(&sub, &cfg, &est.empirical.row_strategy, rounds);
        assert!(play.regret_bound > 0.0);
        assert!(
            play.attacker_payoff.mean() <= est.empirical.value + play.regret_bound,
            "exp3 payoff {} vs value {} + bound {}",
            play.attacker_payoff.mean(),
            est.empirical.value,
            play.regret_bound
        );
        // Deterministic and worker-count independent.
        let mut c = cfg.clone();
        c.workers = 4;
        let again = play_vs_exp3(&sub, &c, &est.empirical.row_strategy, rounds);
        assert_eq!(play.attacker_payoff.mean(), again.attacker_payoff.mean());
    }

    #[test]
    fn support_optimization_improves_or_ties_the_fixed_grid() {
        // Acceptance contract: refined placements never lose to the fixed
        // grid on the scalar smoke game, and the search is
        // scheduling-independent.
        let sub = ScalarSubstrate::new(&standard_pool());
        let cfg = EquilibriumConfig::smoke();
        let opt = SupportOptConfig::smoke();
        let refined = optimize_support(&sub, &cfg, &opt);
        assert!(
            refined.refined_value <= refined.initial_value + 1e-12,
            "refined {} vs initial {}",
            refined.refined_value,
            refined.initial_value
        );
        assert!(refined.refined_atoms.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(refined.refined_atoms.len(), refined.initial_atoms.len());
        assert!(refined.row_estimations >= refined.initial_atoms.len());
        let mut c = cfg.clone();
        c.workers = 4;
        let again = optimize_support(&sub, &c, &opt);
        assert_eq!(refined, again);
    }
}
