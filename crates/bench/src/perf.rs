//! In-process perf snapshots (`expt bench`): wall-clock means for the
//! per-round hot paths, as a table and — with `--json` — a
//! machine-readable `BENCH_PR4.json` snapshot (`case → mean ns`), so the
//! perf trajectory is diffable across PRs without parsing criterion
//! output.
//!
//! Measurement mirrors the vendored criterion harness (warm-up window,
//! calibrated batches, mean over a measurement window) but returns the
//! numbers instead of printing them. Windows honor
//! `TRIMGAME_BENCH_WARMUP_MS` / `TRIMGAME_BENCH_MEASURE_MS`; numbers are
//! indicative, meant for tracking order-of-magnitude movement between
//! commits on the same machine.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use trimgame_stream::trim::{SketchThreshold, TrimOp, TrimScratch};

/// One measured case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// `group/name/size` identifier, stable across PRs.
    pub name: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
}

/// The file the JSON snapshot is written to (repo root by convention).
pub const SNAPSHOT_FILE: &str = "BENCH_PR4.json";

fn time_ns(warmup: Duration, measure: Duration, mut routine: impl FnMut()) -> f64 {
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warmup {
        routine();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let batch =
        ((measure.as_secs_f64() / 10.0 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1 << 20);
    let mut total = Duration::ZERO;
    let mut iterations: u64 = 0;
    while total < measure {
        let start = Instant::now();
        for _ in 0..batch {
            routine();
        }
        total += start.elapsed();
        iterations += batch;
    }
    total.as_secs_f64() * 1e9 / iterations as f64
}

fn batch_values(n: usize) -> Vec<f64> {
    use rand::Rng;
    let mut rng = trimgame_numerics::rand_ext::seeded_rng(7);
    (0..n).map(|_| rng.gen::<f64>() * 1000.0).collect()
}

/// Runs the trim hot-path suite with explicit measurement windows.
#[must_use]
pub fn run_cases(warmup: Duration, measure: Duration) -> Vec<BenchCase> {
    let mut cases = Vec::new();
    let mut push = |name: String, mean_ns: f64| cases.push(BenchCase { name, mean_ns });
    for n in [1_000usize, 10_000, 100_000] {
        let values = batch_values(n);
        let mut scratch = TrimScratch::with_capacity(n);

        let op = TrimOp::UpperPercentile(0.9);
        let _ = op.apply_in_place(&values, &mut scratch);
        push(
            format!("trim/in_place/{n}"),
            time_ns(warmup, measure, || {
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );

        let op = TrimOp::Absolute(900.0);
        push(
            format!("trim/absolute_in_place/{n}"),
            time_ns(warmup, measure, || {
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );

        let op = TrimOp::TwoSided { lo: 0.05, hi: 0.95 };
        push(
            format!("trim/two_sided_in_place/{n}"),
            time_ns(warmup, measure, || {
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );

        let mut source = SketchThreshold::new(0.02);
        source.observe(&values);
        push(
            format!("trim/sketch_query_only/{n}"),
            time_ns(warmup, measure, || {
                let op = source.op(0.9).expect("observed");
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );
    }
    cases
}

/// Serializes cases as a flat JSON object (`{"case": mean_ns, ...}`),
/// keys in run order, values rounded to one decimal.
#[must_use]
pub fn to_json(cases: &[BenchCase]) -> String {
    let mut out = String::from("{\n");
    for (i, case) in cases.iter().enumerate() {
        let _ = write!(out, "  \"{}\": {:.1}", case.name, case.mean_ns);
        out.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

fn env_millis(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default_ms),
    )
}

/// The `expt bench` experiment: measure the suite and render a table.
/// With `TRIMGAME_BENCH_JSON=1` (the CLI's `--json`), also write the
/// [`SNAPSHOT_FILE`] snapshot to the working directory.
#[must_use]
pub fn bench_report() -> String {
    let warmup = env_millis("TRIMGAME_BENCH_WARMUP_MS", 50);
    let measure = env_millis("TRIMGAME_BENCH_MEASURE_MS", 250);
    let cases = run_cases(warmup, measure);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Hot-path perf snapshot ({} cases, warmup {} ms, measure {} ms) ==",
        cases.len(),
        warmup.as_millis(),
        measure.as_millis()
    );
    for case in &cases {
        let _ = writeln!(out, "{:<32} {:>12.1} ns/iter", case.name, case.mean_ns);
    }
    let json_requested = std::env::var("TRIMGAME_BENCH_JSON")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    if json_requested {
        match std::fs::write(SNAPSHOT_FILE, to_json(&cases)) {
            Ok(()) => {
                let _ = writeln!(out, "snapshot written to {SNAPSHOT_FILE}");
            }
            Err(err) => {
                let _ = writeln!(out, "snapshot NOT written ({err})");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_with_tiny_windows_and_serializes() {
        let cases = run_cases(Duration::from_millis(1), Duration::from_millis(2));
        assert_eq!(cases.len(), 12);
        for case in &cases {
            assert!(case.mean_ns > 0.0, "{}: {}", case.name, case.mean_ns);
        }
        let json = to_json(&cases);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches(':').count(), cases.len());
        assert!(json.contains("\"trim/in_place/1000\""));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }
}
