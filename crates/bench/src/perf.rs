//! In-process perf snapshots (`expt bench`): wall-clock means for the
//! per-round hot paths plus the engine-run and equilibrium end-to-end
//! cases, as a table and — with `--json` — a machine-readable
//! [`SNAPSHOT_FILE`] snapshot (`case → mean ns`), so the perf trajectory
//! is diffable across PRs without parsing criterion output
//! (`expt benchdiff` compares two committed snapshots under a regression
//! tolerance).
//!
//! Measurement mirrors the vendored criterion harness (warm-up window,
//! calibrated batches, mean over a measurement window) but returns the
//! numbers instead of printing them. Windows honor
//! `TRIMGAME_BENCH_WARMUP_MS` / `TRIMGAME_BENCH_MEASURE_MS`; numbers are
//! indicative, meant for tracking order-of-magnitude movement between
//! commits on the same machine.

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use trimgame_stream::trim::{SketchThreshold, TrimOp, TrimScratch};

use crate::double_oracle::{double_oracle, DoubleOracleConfig};
use crate::empirical::{
    estimate_on, standard_substrate, EquilibriumConfig, GameSubstrate, ScalarSubstrate,
    SubstrateKind,
};
use trim_core::adversary::AdversaryPolicy;
use trim_core::matrix::MatrixGame;
use trim_core::simulation::{run_game_with_policies, GameConfig, Scheme};
use trim_core::strategy::DefenderPolicy;
use trimgame_numerics::gk::{GkScratch, GkSummary};

/// One measured case.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCase {
    /// `group/name/size` identifier, stable across PRs.
    pub name: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
}

/// The file the JSON snapshot is written to (repo root by convention).
pub const SNAPSHOT_FILE: &str = "BENCH_PR10.json";

fn time_ns(warmup: Duration, measure: Duration, mut routine: impl FnMut()) -> f64 {
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warmup {
        routine();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let batch =
        ((measure.as_secs_f64() / 10.0 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1 << 20);
    let mut total = Duration::ZERO;
    let mut iterations: u64 = 0;
    while total < measure {
        let start = Instant::now();
        for _ in 0..batch {
            routine();
        }
        total += start.elapsed();
        iterations += batch;
    }
    total.as_secs_f64() * 1e9 / iterations as f64
}

fn batch_values(n: usize) -> Vec<f64> {
    use rand::Rng;
    let mut rng = trimgame_numerics::rand_ext::seeded_rng(7);
    (0..n).map(|_| rng.gen::<f64>() * 1000.0).collect()
}

/// Runs the trim hot-path suite with explicit measurement windows.
#[must_use]
pub fn run_cases(warmup: Duration, measure: Duration) -> Vec<BenchCase> {
    let mut cases = Vec::new();
    let mut push = |name: String, mean_ns: f64| cases.push(BenchCase { name, mean_ns });
    for n in [1_000usize, 10_000, 100_000] {
        let values = batch_values(n);
        let mut scratch = TrimScratch::with_capacity(n);

        let op = TrimOp::UpperPercentile(0.9);
        let _ = op.apply_in_place(&values, &mut scratch);
        push(
            format!("trim/in_place/{n}"),
            time_ns(warmup, measure, || {
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );

        let op = TrimOp::Absolute(900.0);
        push(
            format!("trim/absolute_in_place/{n}"),
            time_ns(warmup, measure, || {
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );

        let op = TrimOp::TwoSided { lo: 0.05, hi: 0.95 };
        push(
            format!("trim/two_sided_in_place/{n}"),
            time_ns(warmup, measure, || {
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );

        let mut source = SketchThreshold::new(0.02);
        source.observe(&values);
        push(
            format!("trim/sketch_query_only/{n}"),
            time_ns(warmup, measure, || {
                let op = source.op(0.9).expect("observed");
                std::hint::black_box(op.apply_in_place(&values, &mut scratch).trimmed);
            }),
        );
    }
    cases.extend(gk_cases(warmup, measure));
    cases.extend(frame_cases(warmup, measure));
    cases.extend(matrix_cases(warmup, measure));
    cases.extend(engine_cases(warmup, measure));
    cases.extend(collector_cases(measure));
    cases
}

/// The tiered-storage cases: the frame encode/decode kernels on a
/// span-256 column set, the hot-suffix board read with every cold span
/// compacted (the per-round attacker read — it must not pay for
/// tiering), and the full cold scan through the inflate path.
fn frame_cases(warmup: Duration, measure: Duration) -> Vec<BenchCase> {
    use trimgame_numerics::stats::OnlineStats;
    use trimgame_stream::board::{RangedBoard, RoundRecord};
    use trimgame_stream::compact::{Compactor, TierConfig};
    use trimgame_stream::frame::Frame;

    let values = batch_values(512);
    let record = |round: usize| {
        let mut retained = OnlineStats::new();
        retained.extend(&values[round % 256..round % 256 + 200]);
        RoundRecord {
            round,
            threshold_percentile: 0.9,
            threshold_value: Some(values[round % 512]),
            received: 256,
            trimmed: 25 + round % 7,
            retained,
            quality: 1.0 - values[(round * 31) % 512] * 1e-5,
        }
    };
    let recs: Vec<RoundRecord> = (1..=256).map(record).collect();
    let frame = Frame::encode(&recs);
    let mut cases = vec![
        BenchCase {
            name: "frame/encode/256".into(),
            mean_ns: time_ns(warmup, measure, || {
                std::hint::black_box(Frame::encode(&recs).packed_bytes());
            }),
        },
        BenchCase {
            name: "frame/decode/256".into(),
            mean_ns: time_ns(warmup, measure, || {
                std::hint::black_box(frame.decode().len());
            }),
        },
    ];

    // The durable wire format: serialization (delta header + checksum
    // trailer) and the checksum-verifying parse — what every spill write
    // and every recovery-time frame verification pays.
    let wire = frame.to_bytes();
    cases.push(BenchCase {
        name: "frame/wire_encode/256".into(),
        mean_ns: time_ns(warmup, measure, || {
            std::hint::black_box(frame.to_bytes().len());
        }),
    });
    cases.push(BenchCase {
        name: "frame/wire_decode/256".into(),
        mean_ns: time_ns(warmup, measure, || {
            std::hint::black_box(Frame::from_bytes(&wire).expect("valid wire frame").len());
        }),
    });

    // Manifest journal replay: parse a 64-span spill manifest — the
    // fixed cost `recover_from_spill` pays per shard before any frame
    // verification.
    {
        use trimgame_stream::recover::{read_manifest, ManifestWriter, SpanManifest};
        let dir =
            std::env::temp_dir().join(format!("trimgame-perf-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("perf manifest dir");
        let mut writer = ManifestWriter::create(&dir, "perf", 0, 1, 64).expect("manifest writer");
        for idx in 0..64_u64 {
            writer
                .log_spilled(&SpanManifest {
                    span_idx: idx,
                    base_round: idx * 64 + 1,
                    last_round: (idx + 1) * 64,
                    len: 64,
                    frame_crc: 0xDEAD_BEEF ^ idx as u32,
                    file_name: format!("perf-{idx:05}.tgf"),
                })
                .expect("log spilled span");
        }
        drop(writer);
        let path = dir.join("perf.manifest");
        cases.push(BenchCase {
            name: "recover/manifest_read/64".into(),
            mean_ns: time_ns(warmup, measure, || {
                let mf = read_manifest(&path).expect("readable manifest");
                std::hint::black_box(mf.entries.len());
            }),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // A 4096-round board at span 64 with every cold span framed: the
    // hot-suffix read (last span only) against the full cold scan.
    let board = RangedBoard::new(64);
    for round in 1..=4096 {
        board.post(record(round));
    }
    Compactor::new(TierConfig::default(), "perf").run(&board);
    let suffix_from = 4096 - 63;
    cases.push(BenchCase {
        name: "board/hot_suffix_read_tiered/4096".into(),
        mean_ns: time_ns(warmup, measure, || {
            let mut n = 0usize;
            board.for_each_since_round(suffix_from, |r| n += r.trimmed);
            std::hint::black_box(n);
        }),
    });
    cases.push(BenchCase {
        name: "board/cold_scan_tiered/4096".into(),
        mean_ns: time_ns(warmup, measure, || {
            let mut n = 0usize;
            board.for_each_since_round(0, |r| n += r.trimmed);
            std::hint::black_box(n);
        }),
    });
    cases
}

/// The collector-service cases (the streaming-ingest tentpole):
/// sustained throughput of the sharded pipeline, its per-round inverse
/// (the lower-is-better entry the benchdiff tolerance gate rides on),
/// merged p99 ingest latency, and the single-stream baseline the
/// multi-worker speedup is measured against. Wall-clock figures come
/// from one deterministic service run scaled to the measure window —
/// the pipeline's throughput *is* the measurement, so the generic
/// warmup/batch timer does not apply.
fn collector_cases(measure: Duration) -> Vec<BenchCase> {
    use crate::collector::{run_collector, scalar_stream_setup, CollectorConfig};
    let pool = crate::empirical::standard_pool();
    let rounds = usize::try_from(measure.as_millis())
        .unwrap_or(200)
        .clamp(10, 200);
    let cfg = CollectorConfig {
        streams: 4,
        rounds,
        ..CollectorConfig::default()
    };
    let sharded = run_collector(&cfg, |stream| {
        scalar_stream_setup(&pool, cfg.rounds, cfg.seed, stream)
    });
    let single_cfg = CollectorConfig {
        streams: 1,
        threads: 1,
        rounds: rounds * cfg.streams,
        ..cfg.clone()
    };
    let single = run_collector(&single_cfg, |stream| {
        scalar_stream_setup(&pool, single_cfg.rounds, single_cfg.seed, stream)
    });
    vec![
        BenchCase {
            name: "collector/sustained_rounds_per_sec".into(),
            mean_ns: sharded.rounds_per_sec(),
        },
        BenchCase {
            name: "collector/sustained_round_ns".into(),
            mean_ns: 1e9 / sharded.rounds_per_sec().max(1e-9),
        },
        BenchCase {
            name: "collector/ingest_p99".into(),
            mean_ns: sharded.latency.quantile_ns(0.99) as f64,
        },
        BenchCase {
            name: "collector/single_stream_round_ns".into(),
            mean_ns: 1e9 / single.rounds_per_sec().max(1e-9),
        },
    ]
}

/// The fictitious-play warm-start family (satellite of the double-oracle
/// PR): solving a grown matrix to the same certified gap cold versus
/// warm-started from the parent game's equilibrium. Wall-clock for both,
/// plus the deterministic iterations-to-bound counts as pseudo-cases
/// (`*_iters`, recorded in the `mean_ns` slot like the `*_runs` family)
/// — that count is what the oracle loop pays on every support growth,
/// and it diffs exactly across PRs.
fn matrix_cases(warmup: Duration, measure: Duration) -> Vec<BenchCase> {
    // The oracle's own growth shape: the scalar substrate's closed-form
    // trimming losses on a threshold × response grid, grown by one
    // defender atom and one attacker atom. The parent equilibrium — taken
    // to the same certified gap, exactly what the oracle loop holds when
    // it re-solves after an accepted candidate — is the warm prior.
    let pool = crate::empirical::standard_pool();
    let sub = ScalarSubstrate::new(&pool);
    let cfg = EquilibriumConfig::default_grid();
    let model = sub.closed_form(&cfg);
    let n = 12usize;
    let atom = |i: usize| 0.84 + 0.16 * i as f64 / (n - 1) as f64;
    let loss_grid = |rows: usize, cols: usize| -> Vec<Vec<f64>> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| model.loss(atom(r), atom(c) - 0.02))
                    .collect()
            })
            .collect()
    };
    let gap = 1e-3;
    let parent = MatrixGame::new(loss_grid(n - 1, n - 1)).expect("valid parent game");
    let grown = MatrixGame::new(loss_grid(n, n)).expect("valid grown game");
    let (prior, _) = parent.solve_to_gap(gap, 10_000_000, None);
    let (_, cold_iters) = grown.solve_to_gap(gap, 10_000_000, None);
    let (_, warm_iters) = grown.solve_to_gap(gap, 10_000_000, Some(&prior));
    vec![
        BenchCase {
            name: format!("matrix/solve_to_gap_cold/{n}"),
            mean_ns: time_ns(warmup, measure, || {
                std::hint::black_box(grown.solve_to_gap(gap, 10_000_000, None).1);
            }),
        },
        BenchCase {
            name: format!("matrix/solve_to_gap_warm/{n}"),
            mean_ns: time_ns(warmup, measure, || {
                std::hint::black_box(grown.solve_to_gap(gap, 10_000_000, Some(&prior)).1);
            }),
        },
        BenchCase {
            name: format!("matrix/solve_to_gap_cold_iters/{n}"),
            mean_ns: cold_iters as f64,
        },
        BenchCase {
            name: format!("matrix/solve_to_gap_warm_iters/{n}"),
            mean_ns: warm_iters as f64,
        },
    ]
}

/// The GK ingest pair — the sequential per-value baseline against the
/// batched merge-sweep / histogram first-fill path — measured in the same
/// run so their ratio is the headline sketch-ingest speedup.
fn gk_cases(warmup: Duration, measure: Duration) -> Vec<BenchCase> {
    let mut cases = Vec::new();
    let mut scratch = GkScratch::new();
    for n in [10_000usize, 100_000] {
        let values = batch_values(n);
        cases.push(BenchCase {
            name: format!("gk/ingest_sequential/{n}"),
            mean_ns: time_ns(warmup, measure, || {
                let mut summary = GkSummary::new(0.02);
                for &v in &values {
                    summary.insert(v);
                }
                std::hint::black_box(summary.query(0.9));
            }),
        });
        cases.push(BenchCase {
            name: format!("gk/ingest_batch/{n}"),
            mean_ns: time_ns(warmup, measure, || {
                let mut summary = GkSummary::new(0.02);
                summary.insert_batch(&values, &mut scratch);
                std::hint::black_box(summary.query(0.9));
            }),
        });
        // The warm path: the same batch arriving at an already-populated
        // summary, where ingest stages the keys into tuple-boundary
        // buckets instead of running the full comparison sort. The primed
        // summary is cloned per iteration (a few hundred tuples — noise
        // next to the batch).
        let mut primed = GkSummary::new(0.02);
        primed.insert_batch(&values, &mut scratch);
        cases.push(BenchCase {
            name: format!("gk/ingest_batch_warm/{n}"),
            mean_ns: time_ns(warmup, measure, || {
                let mut summary = primed.clone();
                summary.insert_batch(&values, &mut scratch);
                std::hint::black_box(summary.query(0.9));
            }),
        });
        // The multi-slice sweep: four staged quarter-batches merged in
        // one tuple-list rebuild — the coalesced-backfill shape
        // ([`GkSummary::insert_batches`]).
        let quarters: Vec<&[f64]> = values.chunks(n / 4).collect();
        cases.push(BenchCase {
            name: format!("gk/ingest_batches4_warm/{n}"),
            mean_ns: time_ns(warmup, measure, || {
                let mut summary = primed.clone();
                summary.insert_batches(&quarters, &mut scratch);
                std::hint::black_box(summary.query(0.9));
            }),
        });
        // The skewed warm batch: 90% of the keys land in a handful of
        // buckets, so per-bucket sorting dominates — the shape the
        // radix staging path exists for.
        let skewed: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i % 10 == 0 {
                    v
                } else {
                    500.0 + (i % 97) as f64 * 1e-9
                }
            })
            .collect();
        let mut primed_skew = GkSummary::new(0.02);
        primed_skew.insert_batch(&skewed, &mut scratch);
        cases.push(BenchCase {
            name: format!("gk/ingest_batch_warm_skewed/{n}"),
            mean_ns: time_ns(warmup, measure, || {
                let mut summary = primed_skew.clone();
                summary.insert_batch(&skewed, &mut scratch);
                std::hint::black_box(summary.query(0.9));
            }),
        });
    }
    cases
}

/// One full seeded scalar engine run, the payoff-grid cell shape: lean
/// mode, fixed defender at 0.9, ideal attacker just below.
fn engine_cell(pool: &[f64], rounds: usize, batch: usize) -> f64 {
    let mut cfg = GameConfig::new(Scheme::BaselineStatic);
    cfg.rounds = rounds;
    cfg.batch = batch;
    cfg.seed = 7;
    let out = run_game_with_policies(
        pool,
        &cfg,
        Box::new(DefenderPolicy::Fixed { tth: cfg.tth }),
        Box::new(AdversaryPolicy::Fixed { percentile: 0.89 }),
        None,
        false,
    );
    *out.utilities.u_c.last().expect("rounds > 0")
}

/// The end-to-end cases the equilibrium estimator's wall-clock rides on:
/// a single engine run (one payoff cell) and the whole smoke-grid
/// estimation pipeline.
fn engine_cases(warmup: Duration, measure: Duration) -> Vec<BenchCase> {
    let mut cases = Vec::new();
    let pool = crate::empirical::standard_pool();

    cases.push(BenchCase {
        name: "engine/scalar_run/1000x20".into(),
        mean_ns: time_ns(warmup, measure, || {
            std::hint::black_box(engine_cell(&pool, 20, 1_000));
        }),
    });

    // The same run through the scratch path: one arena + one engine
    // scratch across every iteration — what a payoff-grid worker pays.
    let mut arena = trim_core::simulation::ScalarArena::new(&pool);
    let mut scratch = trim_core::engine::EngineScratch::new();
    let mut cfg = GameConfig::new(Scheme::BaselineStatic);
    cfg.rounds = 20;
    cfg.batch = 1_000;
    cfg.seed = 7;
    cases.push(BenchCase {
        name: "engine/scalar_run_scratch/1000x20".into(),
        mean_ns: time_ns(warmup, measure, || {
            let run = trim_core::simulation::run_game_with_scratch(
                &cfg,
                Box::new(DefenderPolicy::Fixed { tth: cfg.tth }),
                Box::new(AdversaryPolicy::Fixed { percentile: 0.89 }),
                None,
                &mut arena,
                &mut scratch,
            );
            std::hint::black_box(run.final_u_c);
        }),
    });

    let sub = ScalarSubstrate::new(&pool);
    let mut cfg = EquilibriumConfig::smoke();
    cfg.workers = 1; // measure the single-core pipeline, not fan-out noise
    cases.push(BenchCase {
        name: "equilibrium/estimate/scalar_smoke".into(),
        mean_ns: time_ns(warmup, measure, || {
            std::hint::black_box(estimate_on(&sub, &cfg).empirical.value);
        }),
    });

    // The double-oracle pipeline at the same smoke scale: seed support,
    // continuum best responses, warm-started restricted solves.
    let oracle = DoubleOracleConfig::for_game(&cfg);
    cases.push(BenchCase {
        name: "equilibrium/double_oracle/scalar_smoke".into(),
        mean_ns: time_ns(warmup, measure, || {
            std::hint::black_box(double_oracle(&sub, &cfg, &oracle).equilibrium.value);
        }),
    });

    // The sketch-native substrate cells: one smoke estimate per
    // substrate with the defender's cuts resolved from the GK sketch.
    for kind in [SubstrateKind::Ml, SubstrateKind::Ldp] {
        let sub = standard_substrate(kind);
        let mut cfg = EquilibriumConfig::smoke_for(kind);
        cfg.seeds = 2;
        cfg.rounds = 3;
        cfg.batch = if kind == SubstrateKind::Ml { 100 } else { 300 };
        cfg.sketch_epsilon = Some(0.02);
        cfg.workers = 1;
        let label = if kind == SubstrateKind::Ml {
            "ml"
        } else {
            "ldp"
        };
        cases.push(BenchCase {
            name: format!("equilibrium/estimate/{label}_sketch_smoke"),
            mean_ns: time_ns(warmup, measure, || {
                std::hint::black_box(estimate_on(&*sub, &cfg).empirical.value);
            }),
        });
    }
    cases
}

/// The PR acceptance family (`expt bench` only — too heavy for the unit
/// suite): the dense full 5×5×12 scalar grid against the grid-candidate
/// double oracle, as wall-clock cases plus two *pseudo-cases* whose
/// "mean_ns" records the deterministic engine-run counts. The run-count
/// entries make the ≥3× cost claim diffable: their benchdiff ratio stays
/// exactly 1.0 unless the solver's run accounting changes.
#[must_use]
pub fn headline_cases(warmup: Duration, measure: Duration) -> Vec<BenchCase> {
    let pool = crate::empirical::standard_pool();
    let sub = ScalarSubstrate::new(&pool);
    let mut cfg = EquilibriumConfig::default_grid();
    cfg.workers = 1; // one core: the comparison, not fan-out noise
    let dense_runs = cfg.defender_atoms.len() * cfg.attacker_atoms().len() * cfg.seeds;
    let oracle = DoubleOracleConfig::grid_for(&cfg);
    let mut oracle_runs = 0usize;
    let mut cases = Vec::new();
    cases.push(BenchCase {
        name: "equilibrium/dense/scalar_full".into(),
        mean_ns: time_ns(warmup, measure, || {
            std::hint::black_box(estimate_on(&sub, &cfg).empirical.value);
        }),
    });
    cases.push(BenchCase {
        name: "equilibrium/double_oracle/scalar_full".into(),
        mean_ns: time_ns(warmup, measure, || {
            let solved = double_oracle(&sub, &cfg, &oracle);
            oracle_runs = solved.engine_runs;
            std::hint::black_box(solved.equilibrium.value);
        }),
    });
    cases.push(BenchCase {
        name: "equilibrium/dense/scalar_full_runs".into(),
        mean_ns: dense_runs as f64,
    });
    cases.push(BenchCase {
        name: "equilibrium/double_oracle/scalar_full_runs".into(),
        mean_ns: oracle_runs as f64,
    });
    cases
}

/// Serializes cases as a flat JSON object (`{"case": mean_ns, ...}`),
/// keys in run order, values rounded to one decimal.
#[must_use]
pub fn to_json(cases: &[BenchCase]) -> String {
    let mut out = String::from("{\n");
    for (i, case) in cases.iter().enumerate() {
        let _ = write!(out, "  \"{}\": {:.1}", case.name, case.mean_ns);
        out.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Parses a flat `{"case": mean_ns, ...}` snapshot written by
/// [`to_json`].
fn parse_snapshot(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut cases = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed snapshot line: {line}"))?;
        let name = name.trim().trim_matches('"');
        let mean_ns: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad mean for {name}: {e}"))?;
        cases.push((name.to_string(), mean_ns));
    }
    if cases.is_empty() {
        return Err("snapshot holds no cases".into());
    }
    Ok(cases)
}

/// Compares the `current` snapshot against `baseline` under a regression
/// `tolerance` (a current mean more than `tolerance ×` its baseline is a
/// regression). Only cases present in both snapshots are compared, so
/// snapshots may add cases freely across PRs. Returns the rendered table
/// as `Ok` when every shared case is within tolerance and as `Err` when
/// any regressed — the CI smoke gate on committed snapshots.
///
/// # Errors
/// Returns `Err` with the report when a shared case regressed, or with a
/// parse message when either snapshot is malformed.
pub fn bench_diff(baseline: &str, current: &str, tolerance: f64) -> Result<String, String> {
    assert!(tolerance >= 1.0, "tolerance must be at least 1x");
    let base = parse_snapshot(baseline)?;
    let cur = parse_snapshot(current)?;
    let mut out = String::new();
    let mut regressed = 0usize;
    let mut compared = 0usize;
    let _ = writeln!(
        out,
        "{:<36} {:>12} {:>12} {:>8}  status",
        "case", "baseline ns", "current ns", "ratio"
    );
    for (name, base_ns) in &base {
        let Some((_, cur_ns)) = cur.iter().find(|(n, _)| n == name) else {
            let _ = writeln!(
                out,
                "{name:<36} {base_ns:>12.1} {:>12} {:>8}  dropped",
                "-", "-"
            );
            continue;
        };
        compared += 1;
        let ratio = cur_ns / base_ns.max(1e-9);
        let status = if ratio > tolerance {
            regressed += 1;
            "REGRESSED"
        } else if ratio < 1.0 {
            "improved"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{name:<36} {base_ns:>12.1} {cur_ns:>12.1} {ratio:>7.2}x  {status}"
        );
    }
    let _ = writeln!(
        out,
        "{compared} cases compared at tolerance {tolerance:.1}x; {regressed} regressed"
    );
    if regressed > 0 {
        Err(out)
    } else {
        Ok(out)
    }
}

fn env_millis(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(default_ms),
    )
}

/// The `expt bench` experiment: measure the suite and render a table.
/// With `TRIMGAME_BENCH_JSON=1` (the CLI's `--json`), also write the
/// [`SNAPSHOT_FILE`] snapshot to the working directory.
#[must_use]
pub fn bench_report() -> String {
    let warmup = env_millis("TRIMGAME_BENCH_WARMUP_MS", 50);
    let measure = env_millis("TRIMGAME_BENCH_MEASURE_MS", 250);
    let mut cases = run_cases(warmup, measure);
    cases.extend(headline_cases(warmup, measure));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Hot-path perf snapshot ({} cases, warmup {} ms, measure {} ms) ==",
        cases.len(),
        warmup.as_millis(),
        measure.as_millis()
    );
    for case in &cases {
        let _ = writeln!(out, "{:<32} {:>12.1} ns/iter", case.name, case.mean_ns);
    }
    let json_requested = std::env::var("TRIMGAME_BENCH_JSON")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    if json_requested {
        match std::fs::write(SNAPSHOT_FILE, to_json(&cases)) {
            Ok(()) => {
                let _ = writeln!(out, "snapshot written to {SNAPSHOT_FILE}");
            }
            Err(err) => {
                let _ = writeln!(out, "snapshot NOT written ({err})");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_with_tiny_windows_and_serializes() {
        let cases = run_cases(Duration::from_millis(1), Duration::from_millis(2));
        assert_eq!(cases.len(), 43);
        for case in &cases {
            assert!(case.mean_ns > 0.0, "{}: {}", case.name, case.mean_ns);
        }
        let json = to_json(&cases);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches(':').count(), cases.len());
        assert!(json.contains("\"trim/in_place/1000\""));
        assert!(json.contains("\"gk/ingest_batch/100000\""));
        assert!(json.contains("\"gk/ingest_batches4_warm/10000\""));
        assert!(json.contains("\"frame/encode/256\""));
        assert!(json.contains("\"frame/decode/256\""));
        assert!(json.contains("\"frame/wire_encode/256\""));
        assert!(json.contains("\"frame/wire_decode/256\""));
        assert!(json.contains("\"recover/manifest_read/64\""));
        assert!(json.contains("\"board/hot_suffix_read_tiered/4096\""));
        assert!(json.contains("\"board/cold_scan_tiered/4096\""));
        assert!(json.contains("\"gk/ingest_batch_warm/10000\""));
        assert!(json.contains("\"gk/ingest_batch_warm_skewed/10000\""));
        assert!(json.contains("\"matrix/solve_to_gap_warm/12\""));
        assert!(json.contains("\"equilibrium/estimate/ml_sketch_smoke\""));
        assert!(json.contains("\"equilibrium/double_oracle/scalar_smoke\""));
        assert!(json.contains("\"collector/sustained_rounds_per_sec\""));
        assert!(json.contains("\"collector/ingest_p99\""));
        // No trailing comma before the closing brace.
        assert!(!json.contains(",\n}"));
    }

    #[test]
    fn bench_diff_gates_on_tolerance() {
        let baseline = "{\n  \"a/x\": 100.0,\n  \"a/y\": 200.0,\n  \"gone\": 50.0\n}\n";
        // y regressed 2.5x, x improved; `extra` is new and ignored.
        let current = "{\n  \"a/x\": 80.0,\n  \"a/y\": 500.0,\n  \"extra\": 1.0\n}\n";
        let err = bench_diff(baseline, current, 2.0).expect_err("y regressed past 2x");
        assert!(err.contains("REGRESSED"));
        assert!(err.contains("1 regressed"));
        // A generous tolerance accepts the same pair.
        let ok = bench_diff(baseline, current, 3.0).expect("within 3x");
        assert!(ok.contains("improved"));
        assert!(ok.contains("0 regressed"));
        assert!(ok.contains("dropped"));
        // Malformed input is a parse error, not a panic.
        assert!(bench_diff("{}", current, 3.0).is_err());
    }
}
