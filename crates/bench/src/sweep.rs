//! Parallel sweep runner over the unified engine.
//!
//! Randomized-strategy evaluation — mixed attacker policies, threshold
//! games under noise, equilibrium checks — needs *thousands* of seeded
//! game instances, not one. This module fans a grid of
//! (scheme × seed × stream shape) cells across `std::thread::scope`
//! workers, each cell one [`run_game_engine`] call in lean mode (no
//! per-round kept payloads, scratch-buffer trimming), and aggregates
//! per-scheme utility statistics.
//!
//! The work queue is a single atomic cursor over the flattened grid:
//! workers claim the next cell index until the grid is exhausted, so an
//! expensive cell never stalls the rest of a static partition. Results
//! are deterministic — each cell's outcome depends only on its
//! `(scheme, seed, shape)` coordinates, never on scheduling — which
//! [`run`] exploits by writing each cell at its own grid index.
//!
//! Run it from the CLI: `expt sweep` (honors `TRIMGAME_SWEEP_THREADS`).

use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use trim_core::simulation::{run_game_engine, GameConfig, Scheme};
use trimgame_numerics::stats::OnlineStats;
use trimgame_stream::board::ShardedBoard;

/// The stream shape of one sweep axis: how much data arrives per round,
/// for how many rounds, and how hard the adversary presses.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamShape {
    /// Label used in reports.
    pub name: String,
    /// Benign batch size per round.
    pub batch: usize,
    /// Number of rounds.
    pub rounds: usize,
    /// Attack ratio (poison per benign).
    pub attack_ratio: f64,
}

impl StreamShape {
    /// Creates a shape.
    #[must_use]
    pub fn new(name: impl Into<String>, batch: usize, rounds: usize, attack_ratio: f64) -> Self {
        Self {
            name: name.into(),
            batch,
            rounds,
            attack_ratio,
        }
    }
}

/// A grid of engine runs: the cartesian product of schemes, seeds and
/// stream shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Schemes under test.
    pub schemes: Vec<Scheme>,
    /// Master seeds (one independent game instance per seed).
    pub seeds: Vec<u64>,
    /// Stream shapes.
    pub shapes: Vec<StreamShape>,
    /// Nominal threshold `Tth`.
    pub tth: f64,
    /// Tit-for-tat redundancy.
    pub red: f64,
}

impl SweepGrid {
    /// The paper's scheme roster over `n_seeds` derived seeds and three
    /// stream shapes (light / default / heavy) — 6 × `n_seeds` × 3 cells.
    #[must_use]
    pub fn paper_roster(n_seeds: usize, master_seed: u64) -> Self {
        Self {
            schemes: Scheme::roster(),
            seeds: (0..n_seeds as u64)
                .map(|i| trimgame_numerics::rand_ext::derive_seed(master_seed, i))
                .collect(),
            shapes: vec![
                StreamShape::new("light", 200, 20, 0.1),
                StreamShape::new("default", 1_000, 20, 0.2),
                StreamShape::new("heavy", 2_000, 30, 0.4),
            ],
            tth: 0.9,
            red: 0.05,
        }
    }

    /// Number of cells in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schemes.len() * self.seeds.len() * self.shapes.len()
    }

    /// True if the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(scheme, seed, shape)` coordinates of flattened cell `idx`.
    fn cell(&self, idx: usize) -> (Scheme, u64, &StreamShape) {
        let per_scheme = self.seeds.len() * self.shapes.len();
        let scheme = self.schemes[idx / per_scheme];
        let rest = idx % per_scheme;
        let seed = self.seeds[rest / self.shapes.len()];
        let shape = &self.shapes[rest % self.shapes.len()];
        (scheme, seed, shape)
    }

    fn config(&self, scheme: Scheme, seed: u64, shape: &StreamShape) -> GameConfig {
        let mut cfg = GameConfig::new(scheme);
        cfg.tth = self.tth;
        cfg.red = self.red;
        cfg.seed = seed;
        cfg.batch = shape.batch;
        cfg.rounds = shape.rounds;
        cfg.attack_ratio = shape.attack_ratio;
        cfg
    }
}

/// The outcome of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Scheme under test.
    pub scheme: Scheme,
    /// RNG seed of this instance.
    pub seed: u64,
    /// Stream shape label.
    pub shape: String,
    /// Fraction of retained values that are poison.
    pub surviving_poison_fraction: f64,
    /// Fraction of benign values falsely trimmed.
    pub benign_trim_fraction: f64,
    /// Final cumulative adversary utility.
    pub final_u_a: f64,
    /// Final cumulative collector utility.
    pub final_u_c: f64,
    /// Tit-for-tat termination round, if it triggered.
    pub termination_round: Option<usize>,
}

fn run_cell(pool: &[f64], grid: &SweepGrid, idx: usize) -> SweepCell {
    let (scheme, seed, shape) = grid.cell(idx);
    let cfg = grid.config(scheme, seed, shape);
    let out = run_game_engine(pool, &cfg, false);
    SweepCell {
        scheme,
        seed,
        shape: shape.name.clone(),
        surviving_poison_fraction: out.totals.surviving_poison_fraction(),
        benign_trim_fraction: out.totals.benign_trim_fraction(),
        final_u_a: *out.utilities.u_a.last().expect("rounds > 0"),
        final_u_c: *out.utilities.u_c.last().expect("rounds > 0"),
        termination_round: out.termination_round,
    }
}

/// One sweep worker's reusable state: the pool arena (reference tables +
/// round buffers) and the engine trajectory scratch, shared by every
/// cell that worker claims.
#[derive(Debug)]
pub struct SweepWorker {
    arena: trim_core::simulation::ScalarArena,
    scratch: trim_core::engine::EngineScratch,
}

impl SweepWorker {
    /// Builds a worker over `pool` (one pool copy + sort, amortized over
    /// all of the worker's cells).
    #[must_use]
    pub fn new(pool: &[f64]) -> Self {
        Self {
            arena: trim_core::simulation::ScalarArena::new(pool),
            scratch: trim_core::engine::EngineScratch::new(),
        }
    }
}

/// The scratch-path cell: bit-identical outcomes to [`run_cell`]'s
/// allocating engine run (the parallel ≡ sequential test crosses the two
/// paths on purpose), with zero per-cell allocation after worker warm-up.
fn run_cell_with(
    worker: &mut SweepWorker,
    grid: &SweepGrid,
    idx: usize,
    board: Option<trimgame_stream::board::PublicBoard>,
) -> SweepCell {
    let (scheme, seed, shape) = grid.cell(idx);
    let cfg = grid.config(scheme, seed, shape);
    let baseline_quality = 1.0; // clean batches carry no excess tail mass
    let defender = cfg.scheme.defender(cfg.tth, baseline_quality, cfg.red);
    let adversary = cfg
        .adversary_override
        .clone()
        .unwrap_or_else(|| cfg.scheme.adversary(cfg.tth));
    let run = trim_core::simulation::run_game_with_scratch(
        &cfg,
        Box::new(defender),
        Box::new(adversary),
        board,
        &mut worker.arena,
        &mut worker.scratch,
    );
    SweepCell {
        scheme,
        seed,
        shape: shape.name.clone(),
        surviving_poison_fraction: run.totals.surviving_poison_fraction(),
        benign_trim_fraction: run.totals.benign_trim_fraction(),
        final_u_a: run.final_u_a,
        final_u_c: run.final_u_c,
        termination_round: run.termination_round,
    }
}

/// Runs every cell of the grid sequentially, in grid order.
///
/// # Panics
/// Panics if the pool is empty or the grid degenerate.
#[must_use]
pub fn run_sequential(pool: &[f64], grid: &SweepGrid) -> Vec<SweepCell> {
    (0..grid.len())
        .map(|idx| run_cell(pool, grid, idx))
        .collect()
}

/// Resolves a requested worker count: `0` means the machine's available
/// parallelism, and the result is capped at `n` jobs (never below one).
#[must_use]
pub fn resolve_workers(requested: usize, n: usize) -> usize {
    let workers = if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    };
    workers.min(n.max(1))
}

/// The worker count requested through `TRIMGAME_SWEEP_THREADS`
/// (`0`/unset = all cores).
#[must_use]
pub fn env_workers() -> usize {
    std::env::var("TRIMGAME_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0)
}

/// Fans `n` independent jobs across `workers` scoped threads (a single
/// atomic cursor over the flattened index space — an expensive job never
/// stalls the rest of a static partition) and returns results in index
/// order. `workers == 0` uses the machine's available parallelism;
/// `workers <= 1` runs sequentially on the calling thread.
///
/// As long as `job(idx)` depends only on `idx` — which every seeded
/// engine cell in this crate does — the output is identical regardless of
/// the worker count or scheduling, which is what makes the sweep and the
/// empirical equilibrium estimator deterministic under
/// `TRIMGAME_SWEEP_THREADS`.
///
/// # Panics
/// Panics if a worker panics.
#[must_use]
pub fn parallel_map<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, workers, || (), |(), idx| job(idx))
}

/// Write handle for the lock-free result slots: each claimed index is
/// written by exactly one worker (the atomic cursor hands indices out
/// uniquely), so the disjoint `&mut` writes never alias, and the scope
/// join publishes them to the collecting thread.
struct SlotWriter<T>(*mut Option<T>);

// SAFETY: the raw pointer is only dereferenced at indices handed out
// uniquely by the claim cursor; `T: Send` makes moving results across
// the worker threads sound.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for SlotWriter<T> {}

/// [`parallel_map`] with per-worker state: `init` runs once on each
/// worker thread (and once for the sequential path), and every job on
/// that worker receives `&mut` of its state — the engine-scratch /
/// scenario-arena reuse hook that makes a payoff sweep allocation-free
/// across cells. State must never influence results (it is scheduling-
/// dependent which jobs share a worker); the determinism contract is the
/// same as [`parallel_map`]'s.
///
/// Results are written into disjoint pre-allocated slots — no per-item
/// lock, so tiny jobs (a 10-round equilibrium cell) pay nothing beyond
/// the claim cursor.
///
/// # Panics
/// Panics if a worker panics.
#[must_use]
pub fn parallel_map_with<T, W, I, F>(n: usize, workers: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let workers = resolve_workers(workers, n);
    if workers <= 1 {
        let mut state = init();
        return (0..n).map(|idx| job(&mut state, idx)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let writer = SlotWriter(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let writer = &writer;
            let (init, job, cursor) = (&init, &job, &cursor);
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let result = job(&mut state, idx);
                    // SAFETY: `idx < n` is in bounds of the slot buffer,
                    // and the fetch_add claim makes this worker the only
                    // writer of slot `idx`; the buffer outlives the scope.
                    #[allow(unsafe_code)]
                    unsafe {
                        *writer.0.add(idx) = Some(result);
                    }
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

/// Runs every cell of the grid across `workers` scoped threads and
/// returns the cells in grid order. `workers == 0` uses the machine's
/// available parallelism. The result is identical to [`run_sequential`]
/// on the same grid (cells are seed-deterministic and
/// scheduling-independent); each worker reuses one [`SweepWorker`]
/// (arena + engine scratch) across all of its cells.
///
/// # Panics
/// Panics if the pool is empty, the grid is degenerate, or a worker
/// panics.
#[must_use]
pub fn run(pool: &[f64], grid: &SweepGrid, workers: usize) -> Vec<SweepCell> {
    parallel_map_with(
        grid.len(),
        workers,
        || SweepWorker::new(pool),
        |worker, idx| run_cell_with(worker, grid, idx, None),
    )
}

/// The shared-board sweep: every cell's engine publishes its per-round
/// records into its own shard of one [`ShardedBoard`] venue, so the
/// whole grid's public history is readable by a single cross-collector
/// observer ([`ShardedBoard::merged`]) — the information-leakage channel
/// a fleet of collectors exposes to a board-reading adversary. Cell
/// outcomes are identical to [`run`] (the policies in the roster are not
/// board-driven; the board only *records*).
///
/// # Panics
/// Panics if the pool is empty, the grid is degenerate, or a worker
/// panics.
#[must_use]
pub fn run_shared_board(
    pool: &[f64],
    grid: &SweepGrid,
    workers: usize,
) -> (Vec<SweepCell>, ShardedBoard) {
    let venue = ShardedBoard::new(grid.len().max(1));
    let cells = parallel_map_with(
        grid.len(),
        workers,
        || SweepWorker::new(pool),
        |worker, idx| run_cell_with(worker, grid, idx, Some(venue.collector(idx))),
    );
    (cells, venue)
}

/// Per-scheme aggregate statistics over a sweep's cells.
#[derive(Debug, Clone)]
pub struct SchemeStats {
    /// Scheme legend name (borrowed for the static schemes — the sweep
    /// result key allocates only for the `Elastic` family).
    pub scheme: Cow<'static, str>,
    /// Number of cells aggregated.
    pub cells: usize,
    /// Surviving poison fraction across cells.
    pub poison: OnlineStats,
    /// Benign trim fraction across cells.
    pub overhead: OnlineStats,
    /// Final adversary utility across cells.
    pub u_a: OnlineStats,
    /// Final collector utility across cells.
    pub u_c: OnlineStats,
    /// How many cells terminated (Tit-for-tat trigger).
    pub terminated: usize,
}

/// Aggregates sweep cells per scheme, in first-appearance order.
#[must_use]
pub fn aggregate(cells: &[SweepCell]) -> Vec<SchemeStats> {
    let mut stats: Vec<SchemeStats> = Vec::new();
    for cell in cells {
        let name = cell.scheme.name();
        let entry = match stats.iter_mut().find(|s| s.scheme == name) {
            Some(entry) => entry,
            None => {
                stats.push(SchemeStats {
                    scheme: name,
                    cells: 0,
                    poison: OnlineStats::new(),
                    overhead: OnlineStats::new(),
                    u_a: OnlineStats::new(),
                    u_c: OnlineStats::new(),
                    terminated: 0,
                });
                stats.last_mut().expect("just pushed")
            }
        };
        entry.cells += 1;
        entry.poison.push(cell.surviving_poison_fraction);
        entry.overhead.push(cell.benign_trim_fraction);
        entry.u_a.push(cell.final_u_a);
        entry.u_c.push(cell.final_u_c);
        if cell.termination_round.is_some() {
            entry.terminated += 1;
        }
    }
    stats
}

/// The `expt sweep` experiment: runs the default grid sequentially and in
/// parallel, verifies the results agree, and reports per-scheme utility
/// statistics plus the wall-clock comparison.
#[must_use]
pub fn sweep_report() -> String {
    use std::fmt::Write as _;
    let threads = env_workers();
    let pool = crate::empirical::standard_pool();
    let grid = SweepGrid::paper_roster(4, 2024);

    let t0 = std::time::Instant::now();
    let sequential = run_sequential(&pool, &grid);
    let seq_time = t0.elapsed();
    let t1 = std::time::Instant::now();
    let parallel = run(&pool, &grid, threads);
    let par_time = t1.elapsed();
    assert_eq!(sequential, parallel, "sweep must be scheduling-independent");

    let workers = resolve_workers(threads, grid.len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Sweep: {} cells ({} schemes x {} seeds x {} shapes) ==",
        grid.len(),
        grid.schemes.len(),
        grid.seeds.len(),
        grid.shapes.len()
    );
    let _ = writeln!(
        out,
        "sequential {:.1} ms | parallel {:.1} ms on {} workers | speedup {:.2}x",
        seq_time.as_secs_f64() * 1e3,
        par_time.as_secs_f64() * 1e3,
        workers,
        seq_time.as_secs_f64() / par_time.as_secs_f64().max(1e-9),
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<16} {:>5} {:>18} {:>18} {:>12} {:>12} {:>6}",
        "scheme", "cells", "poison (mu+/-sd)", "overhead (mu+/-sd)", "u_a (mu)", "u_c (mu)", "term"
    );
    for s in aggregate(&parallel) {
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>8.4}+/-{:>7.4} {:>9.4}+/-{:>7.4} {:>12.4} {:>12.4} {:>6}",
            s.scheme,
            s.cells,
            s.poison.mean(),
            s.poison.variance().sqrt(),
            s.overhead.mean(),
            s.overhead.variance().sqrt(),
            s.u_a.mean(),
            s.u_c.mean(),
            s.terminated,
        );
    }

    // Shared-board mode: the same grid publishing into one sharded venue,
    // plus what a single cross-collector observer extracts from it.
    let t2 = std::time::Instant::now();
    let (shared_cells, venue) = run_shared_board(&pool, &grid, threads);
    let shared_time = t2.elapsed();
    assert_eq!(parallel, shared_cells, "the board only records");
    let merged = venue.merged();
    let mut distinct_thresholds = std::collections::BTreeSet::new();
    let mut first_seen_round = usize::MAX;
    merged.for_each(|_, record| {
        distinct_thresholds.insert(record.threshold_percentile.to_bits());
        first_seen_round = first_seen_round.min(record.round);
    });
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "== Shared board: {} collectors, {} public records ({:.1} ms with per-collector shards) ==",
        venue.collectors(),
        merged.len(),
        shared_time.as_secs_f64() * 1e3,
    );
    let _ = writeln!(
        out,
        "cross-collector leakage: one merged read exposes every collector's trimming position — \
         {} distinct threshold percentiles, visible from round {} on",
        distinct_thresholds.len(),
        if first_seen_round == usize::MAX {
            0
        } else {
            first_seen_round
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<f64> {
        (0..5_000).map(|i| (i % 500) as f64 / 5.0).collect()
    }

    fn small_grid() -> SweepGrid {
        SweepGrid {
            schemes: vec![Scheme::Ostrich, Scheme::Baseline09, Scheme::Elastic(0.5)],
            seeds: vec![1, 2],
            shapes: vec![
                StreamShape::new("a", 100, 4, 0.2),
                StreamShape::new("b", 200, 3, 0.3),
            ],
            tth: 0.9,
            red: 0.05,
        }
    }

    #[test]
    fn grid_len_is_product() {
        let grid = small_grid();
        assert_eq!(grid.len(), 12);
        assert!(!grid.is_empty());
        assert_eq!(SweepGrid::paper_roster(4, 7).len(), 72);
    }

    #[test]
    fn parallel_matches_sequential() {
        let grid = small_grid();
        let pool = pool();
        let seq = run_sequential(&pool, &grid);
        for workers in [1, 2, 4] {
            let par = run(&pool, &grid, workers);
            assert_eq!(seq, par, "workers={workers}");
        }
    }

    #[test]
    fn per_worker_state_never_leaks_into_results() {
        // parallel_map_with: the worker state is reused across every job a
        // worker claims; results must match the stateless map regardless.
        let stateless = parallel_map(37, 1, |idx| idx * idx);
        for workers in [2, 3, 8] {
            let with_state = parallel_map_with(
                37,
                workers,
                || 0usize,
                |calls, idx| {
                    *calls += 1; // scheduling-dependent, result-irrelevant
                    idx * idx
                },
            );
            assert_eq!(with_state, stateless, "workers={workers}");
        }
    }

    #[test]
    fn shared_board_mode_records_without_changing_outcomes() {
        let grid = small_grid();
        let pool = pool();
        let isolated = run(&pool, &grid, 2);
        let (shared, venue) = run_shared_board(&pool, &grid, 3);
        assert_eq!(isolated, shared);
        assert_eq!(venue.collectors(), grid.len());
        // Every cell posted one record per round onto its own shard.
        for idx in 0..grid.len() {
            let (_, _, shape) = grid.cell(idx);
            assert_eq!(venue.collector(idx).len(), shape.rounds, "cell {idx}");
        }
        // The merged observer sees the whole venue in round order.
        let merged = venue.merged();
        let records = merged.records();
        assert_eq!(records.len(), venue.total_len());
        assert!(records.windows(2).all(|w| w[0].1.round <= w[1].1.round));
    }

    #[test]
    fn cells_are_in_grid_order() {
        let grid = small_grid();
        let cells = run(&pool(), &grid, 3);
        assert_eq!(cells.len(), grid.len());
        for (idx, cell) in cells.iter().enumerate() {
            let (scheme, seed, shape) = grid.cell(idx);
            assert_eq!(cell.scheme, scheme);
            assert_eq!(cell.seed, seed);
            assert_eq!(cell.shape, shape.name);
        }
    }

    #[test]
    fn aggregate_groups_by_scheme() {
        let grid = small_grid();
        let stats = aggregate(&run_sequential(&pool(), &grid));
        assert_eq!(stats.len(), 3);
        for s in &stats {
            assert_eq!(s.cells, 4);
            assert_eq!(s.poison.count(), 4);
        }
        // Ostrich keeps all poison; Elastic keeps its poison deep below
        // the threshold, but everyone's fractions are valid.
        assert!(stats[0].poison.mean() > 0.05);
        for s in &stats {
            assert!((0.0..=1.0).contains(&s.poison.mean()), "{}", s.scheme);
        }
    }

    #[test]
    fn cell_matches_direct_engine_run() {
        let grid = small_grid();
        let pool = pool();
        let cells = run_sequential(&pool, &grid);
        let cfg = grid.config(grid.schemes[0], grid.seeds[0], &grid.shapes[0]);
        let direct = run_game_engine(&pool, &cfg, false);
        assert_eq!(
            cells[0].surviving_poison_fraction,
            direct.totals.surviving_poison_fraction()
        );
        assert_eq!(cells[0].final_u_a, *direct.utilities.u_a.last().unwrap());
    }
}
