//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Absolute numbers differ from the paper (synthetic data stand-ins,
//! different learner implementations; see `DESIGN.md §3`), but the rows
//! and series have the same structure and the same qualitative shape —
//! EXPERIMENTS.md records the paper-vs-measured comparison.

use crate::sweep::{env_workers, parallel_map};
use std::fmt::Write as _;
use std::sync::Arc;
use trim_core::config;
use trim_core::elastic::CoupledDynamics;
use trim_core::ldp_sim::{ldp_mse, LdpDefense, LdpSimConfig};
use trim_core::matrix::UltimatumPayoffs;
use trim_core::ml_sim::{
    collect_poisoned_with_model, som_structure, svm_accuracy, MlModel, MlSimConfig,
};
use trim_core::simulation::{run_table3_point, Scheme};
use trimgame_datasets::shapes::{control, creditcard, taxi, vehicle, Shape};
use trimgame_datasets::Dataset;
use trimgame_ml::metrics::ConfusionMatrix;
use trimgame_ml::som::{Som, SomConfig};
use trimgame_ml::svm::{SvmConfig, SvmModel};
use trimgame_numerics::rand_ext::{derive_seed, seeded_rng};

/// Table I: the ultimatum payoff matrix, its unique equilibrium, and the
/// prisoner's-dilemma observation.
#[must_use]
pub fn table1() -> String {
    let payoffs = UltimatumPayoffs::default_paper();
    let matrix = payoffs.matrix();
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: payoff matrix of the ultimatum game ==");
    let _ = writeln!(
        out,
        "constants: P̄={} > T̄={} >> P={} > T={} > 0",
        payoffs.p_hard, payoffs.t_hard, payoffs.p_soft, payoffs.t_soft
    );
    let _ = writeln!(out);
    let _ = write!(out, "{matrix}");
    let _ = writeln!(out);
    let eq = matrix.pure_nash_equilibria();
    let _ = writeln!(out, "pure Nash equilibria: {eq:?}");
    let _ = writeln!(
        out,
        "(Soft, Soft) Pareto-dominates the equilibrium: {}",
        matrix.pareto_dominates(
            (trim_core::matrix::Move::Soft, trim_core::matrix::Move::Soft),
            (trim_core::matrix::Move::Hard, trim_core::matrix::Move::Hard)
        )
    );
    let _ = writeln!(
        out,
        "=> one-shot play is mutually hard; the infinite repeated game (Section IV) escapes it"
    );
    out
}

/// Table II: dataset information.
#[must_use]
pub fn table2() -> String {
    let scale = config::dataset_scale();
    let mut rng = seeded_rng(2024);
    let mut out = String::new();
    let _ = writeln!(out, "== Table II: dataset information ==");
    let _ = writeln!(
        out,
        "(generated at TRIMGAME_SCALE={scale}; paper sizes in brackets)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>12} {:>9} {:>9}",
        "Dataset", "Instances", "[paper]", "Features", "Clusters"
    );
    for shape in Shape::ALL {
        let d = shape.generate_scaled(&mut rng, scale);
        let info = d.info();
        let _ = writeln!(
            out,
            "{:<12} {:>9} {:>12} {:>9} {:>9}",
            info.name,
            info.instances,
            format!("[{}]", shape.paper_instances()),
            info.features,
            info.clusters
        );
    }
    out
}

/// The attack-ratio grids of Figs. 4/5 (three points per interval keeps
/// the default run fast; the shape is identical with six).
fn ratio_grid() -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("[0,0.01]", vec![0.002, 0.006, 0.01]),
        ("[0.05,0.15]", vec![0.05, 0.10, 0.15]),
        ("[0.2,0.5]", vec![0.2, 0.35, 0.5]),
    ]
}

fn fig45_datasets() -> Vec<Dataset> {
    let scale = config::dataset_scale();
    let mut rng = seeded_rng(777);
    vec![
        control(&mut rng),
        vehicle(&mut rng),
        trimgame_datasets::shapes::letter(&mut rng, scale.max(16)),
    ]
}

/// Figs. 4/5: k-means SSE and centroid distance over Control, Vehicle and
/// Letter at the given `tth` (0.90 for Fig. 4, 0.97 for Fig. 5).
#[must_use]
pub fn fig45(tth: f64) -> String {
    let reps = config::repetitions().min(10);
    let schemes = Scheme::roster();
    let mut out = String::new();
    let fig = if (tth - 0.9).abs() < 1e-9 {
        "Fig. 4"
    } else {
        "Fig. 5"
    };
    let _ = writeln!(
        out,
        "== {fig}: k-means over Control/Vehicle/Letter, Tth={tth} =="
    );
    let _ = writeln!(
        out,
        "({reps} repetitions per point; SSE normalized per retained row)"
    );

    for data in fig45_datasets() {
        let truth = trim_core::ml_sim::kmeans_truth(&data);
        // One k-means fit per dataset, shared across every cell.
        let model = Arc::new(MlModel::fit(&data));
        let grid = ratio_grid();
        let ratios_flat: Vec<f64> = grid.iter().flat_map(|(_, rs)| rs.iter().copied()).collect();
        // One job per (scheme, ratio, repetition) cell; each is seeded
        // purely by its index, so the fan-out is deterministic under any
        // worker count and the numbers match the sequential loop exactly.
        let cells = parallel_map(
            schemes.len() * ratios_flat.len() * reps,
            env_workers(),
            |idx| {
                let rep = idx % reps;
                let ri = (idx / reps) % ratios_flat.len();
                let si = idx / (reps * ratios_flat.len());
                let cfg = MlSimConfig {
                    rounds: 20,
                    batch: 60,
                    ..MlSimConfig::new(
                        schemes[si],
                        tth,
                        ratios_flat[ri],
                        derive_seed(5, rep as u64),
                    )
                };
                let collected = collect_poisoned_with_model(&data, &cfg, &model);
                let (sse, dist) = trim_core::ml_sim::kmeans_metrics_vs(&collected, &truth);
                // Normalize SSE by retained rows so schemes with
                // different retention are comparable.
                (sse / collected.retained.rows().max(1) as f64, dist)
            },
        );
        let cell_mean = |si: usize, ri: usize| {
            let base = (si * ratios_flat.len() + ri) * reps;
            let (sse, dist) = cells[base..base + reps]
                .iter()
                .fold((0.0, 0.0), |(s, d), &(cs, cd)| (s + cs, d + cd));
            (sse / reps as f64, dist / reps as f64)
        };
        let mut ri_base = 0;
        for (interval, ratios) in &grid {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- {}{} ---", data.name().to_uppercase(), interval);
            let _ = write!(out, "{:<16}", "scheme");
            for r in ratios {
                let _ = write!(out, " {:>11} {:>9}", format!("SSE@{r}"), "dist");
            }
            let _ = writeln!(out);
            for (si, scheme) in schemes.iter().enumerate() {
                let _ = write!(out, "{:<16}", scheme.name());
                for k in 0..ratios.len() {
                    let (sse, dist) = cell_mean(si, ri_base + k);
                    let _ = write!(out, " {:>11.1} {:>9.2}", sse, dist);
                }
                let _ = writeln!(out);
            }
            ri_base += ratios.len();
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "shape: Ostrich competitive at tiny ratios, degrades as poison grows;"
    );
    let _ = writeln!(
        out,
        "the game-theoretic schemes dominate at [0.2,0.5], Elastic 0.5 strongest."
    );
    out
}

/// Fig. 6: ground truth of SVM (confusion with PPV/FDR) and SOM (U-matrix).
#[must_use]
pub fn fig6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 6: ground truth of SVM and SOM classification =="
    );
    // (a) SVM on Control with labels.
    let data = control(&mut seeded_rng(2024));
    let model = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(1));
    let predictions = model.predict_all(&data);
    let cm = ConfusionMatrix::from_predictions(data.labels().unwrap(), &predictions, 6);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "(a) SVM on Control — accuracy {:.1}%",
        cm.accuracy() * 100.0
    );
    let _ = writeln!(out, "{cm}");
    let _ = writeln!(out);

    // (b) SOM on Creditcard.
    let scale = config::dataset_scale();
    let cc = creditcard(&mut seeded_rng(31), scale);
    let som = Som::fit(&cc, SomConfig::paper(), &mut seeded_rng(32));
    let _ = writeln!(
        out,
        "(b) SOM 20x20 on Creditcard — U-matrix (darker = larger distance)"
    );
    let _ = write!(out, "{}", render_u_matrix(&som));
    let footprint = som.class_footprint(&cc);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "class footprints (distinct BMU cells): bulk={}, fraud={}, premium={}, green={}",
        footprint[0], footprint[1], footprint[2], footprint[3]
    );
    let _ = writeln!(out, "separated classes: {}", som.separated_classes(&cc));
    out
}

/// ASCII rendering of a SOM's U-matrix using density shades.
fn render_u_matrix(som: &Som) -> String {
    let u = som.u_matrix();
    let max = u
        .iter()
        .flatten()
        .fold(0.0_f64, |m, &x| m.max(x))
        .max(1e-12);
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for row in &u {
        for &v in row {
            let idx = ((v / max) * (shades.len() - 1) as f64).round() as usize;
            out.push(shades[idx.min(shades.len() - 1)]);
            out.push(shades[idx.min(shades.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

/// Fig. 7: SVM accuracy across the six schemes on Control
/// (`Tth = 0.95`, attack ratio 0.4).
#[must_use]
pub fn fig7() -> String {
    let reps = config::repetitions().min(10);
    let data = control(&mut seeded_rng(2024));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 7: SVM accuracy, Control, Tth=0.95, ratio=0.4 =="
    );
    let _ = writeln!(out, "({reps} repetitions)");
    let _ = writeln!(out);

    let gt_model = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(3));
    let _ = writeln!(
        out,
        "{:<16} {:>10}",
        "Groundtruth",
        format!("{:.1}%", gt_model.accuracy(&data) * 100.0)
    );

    // One shared clean fit; (scheme, repetition) cells fan out across
    // workers, each seeded by its index alone.
    let model = Arc::new(MlModel::fit(&data));
    let schemes = Scheme::roster();
    let accs = parallel_map(schemes.len() * reps, env_workers(), |idx| {
        let rep = idx % reps;
        let cfg = MlSimConfig {
            rounds: 20,
            batch: 60,
            ..MlSimConfig::new(schemes[idx / reps], 0.95, 0.4, derive_seed(21, rep as u64))
        };
        let collected = collect_poisoned_with_model(&data, &cfg, &model);
        svm_accuracy(&collected, &data, derive_seed(23, rep as u64))
    });
    for (si, scheme) in schemes.iter().enumerate() {
        let acc_sum: f64 = accs[si * reps..(si + 1) * reps].iter().sum();
        let _ = writeln!(
            out,
            "{:<16} {:>10}",
            scheme.name(),
            format!("{:.1}%", acc_sum / reps as f64 * 100.0)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "shape: ours > Ostrich > static baselines (paper: 96.8 GT;"
    );
    let _ = writeln!(out, "95.5/95.1/94.9 baselines; 96.1/95.6/95.7 ours)");
    out
}

/// Fig. 8: SOM class-structure preservation on Creditcard across schemes.
#[must_use]
pub fn fig8() -> String {
    let scale = config::dataset_scale();
    let data = creditcard(&mut seeded_rng(31), scale.max(32));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 8: SOM class structure, Creditcard, Tth=0.95, ratio=0.4 =="
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "scheme", "separated", "bulk", "fraud", "premium", "green"
    );

    // Ground truth row: SOM trained on the clean data.
    let som = Som::fit(&data, SomConfig::paper(), &mut seeded_rng(41));
    let fp = som.class_footprint(&data);
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "Groundtruth",
        som.separated_classes(&data),
        fp[0],
        fp[1],
        fp[2],
        fp[3]
    );

    // One scheme per job over the shared clean fit (the SOM refit inside
    // som_structure dominates each cell).
    let model = Arc::new(MlModel::fit(&data));
    let schemes = Scheme::roster();
    let rows = parallel_map(schemes.len(), env_workers(), |si| {
        let cfg = MlSimConfig {
            rounds: 10,
            batch: 200,
            ..MlSimConfig::new(schemes[si], 0.95, 0.4, 43)
        };
        let collected = collect_poisoned_with_model(&data, &cfg, &model);
        som_structure(&collected, &data, SomConfig::paper(), 47)
    });
    for (scheme, (separated, footprint)) in schemes.iter().zip(rows) {
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>8} {:>8} {:>8} {:>8}",
            scheme.name(),
            separated,
            footprint.first().copied().unwrap_or(0),
            footprint.get(1).copied().unwrap_or(0),
            footprint.get(2).copied().unwrap_or(0),
            footprint.get(3).copied().unwrap_or(0)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "shape: the poison 'expands the area' of the small green class"
    );
    let _ = writeln!(
        out,
        "(footprint grows beyond the ground truth's single cell) exactly as"
    );
    let _ = writeln!(
        out,
        "the paper describes for its schemes, and unchecked poison (Ostrich)"
    );
    let _ = writeln!(
        out,
        "erodes the bulk class's footprint the most. Our synthetic stand-in"
    );
    let _ = writeln!(
        out,
        "keeps the two singletons separable under all schemes (their anomaly"
    );
    let _ = writeln!(out, "scores are zero by construction); see EXPERIMENTS.md.");
    out
}

/// Table III: the non-equilibrium p-sweep.
#[must_use]
pub fn table3() -> String {
    let reps = config::repetitions();
    let data = control(&mut seeded_rng(5));
    let pool = trimgame_datasets::percentile::centroid_distances(&data);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table III: non-equilibrium results, Control, ratio 0.2 =="
    );
    let _ = writeln!(
        out,
        "({reps} repetitions; sentinel 25 = no termination in 20 rounds)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>5} {:>22} {:>12} {:>12}",
        "p", "avg termination rounds", "Titfortat", "Elastic"
    );
    // The eleven p-points are independent seeded sweeps — fan them out.
    let rows = parallel_map(11, env_workers(), |i| {
        run_table3_point(&pool, i as f64 / 10.0, 0.5, reps, 1234)
    });
    for row in rows {
        let _ = writeln!(
            out,
            "{:>5.1} {:>22.2} {:>12.5} {:>12.5}",
            row.p, row.avg_termination, row.titfortat_fraction, row.elastic_fraction
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "shape: termination rounds fall as defection grows; surviving"
    );
    let _ = writeln!(
        out,
        "poison falls with p — deviating from rational play loses utility."
    );
    out
}

/// Table IV: roundwise cost of Elastic 0.1 / 0.5.
#[must_use]
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table IV: roundwise cost of Elastic 0.1 and Elastic 0.5 =="
    );
    let _ = writeln!(out);
    let d01 = CoupledDynamics::new(0.9, 0.1).expect("valid k");
    let d05 = CoupledDynamics::new(0.9, 0.5).expect("valid k");
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>12}",
        "Round_no", "k=0.5 (%)", "k=0.1 (%)"
    );
    for n in (5..=50).step_by(5) {
        let _ = writeln!(
            out,
            "{:>9} {:>11.5}% {:>11.5}%",
            n,
            d05.roundwise_cost(n) * 100.0,
            d01.roundwise_cost(n) * 100.0
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "analytic equilibrium injection offsets |A* - Tth|: k=0.1 -> {:.5}%, k=0.5 -> {:.5}%",
        d01.equilibrium_injection_offset() * 100.0,
        d05.equilibrium_injection_offset() * 100.0
    );
    let _ = writeln!(
        out,
        "note: the paper's converged totals (3.0404% / 4.3334%) equal these"
    );
    let _ = writeln!(
        out,
        "offsets with the two k columns transposed — see EXPERIMENTS.md."
    );
    out
}

/// Fig. 9: LDP MSE versus ε, trimming strategies vs EMF, per attack ratio.
#[must_use]
pub fn fig9() -> String {
    let reps = config::repetitions().min(10);
    let scale = config::dataset_scale();
    let data = taxi(&mut seeded_rng(99), scale.max(32));
    let population: Vec<f64> = data.values().to_vec();
    let epsilons = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0];
    let ratios = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 9: LDP MSE vs epsilon, Taxi, input manipulation =="
    );
    let _ = writeln!(out, "({} users/round, 5 rounds, {reps} reps)", 1_000);

    // One job per (ratio, defense, epsilon) cell of the 9x4x9 grid; each
    // runs its own seeded repetitions, so the fan-out is deterministic.
    let defenses = LdpDefense::roster();
    let mses = parallel_map(
        ratios.len() * defenses.len() * epsilons.len(),
        env_workers(),
        |idx| {
            let ei = idx % epsilons.len();
            let di = (idx / epsilons.len()) % defenses.len();
            let ri = idx / (epsilons.len() * defenses.len());
            let mut cfg = LdpSimConfig::new(epsilons[ei], ratios[ri], 61);
            cfg.users_per_round = 1_000;
            cfg.rounds = 5;
            ldp_mse(&population, defenses[di], &cfg, reps)
        },
    );
    for (ri, ratio) in ratios.iter().enumerate() {
        let _ = writeln!(out);
        let _ = writeln!(out, "--- attack ratio = {ratio} ---");
        let _ = write!(out, "{:<12}", "defense");
        for eps in epsilons {
            let _ = write!(out, " {:>9}", format!("e={eps}"));
        }
        let _ = writeln!(out);
        for (di, defense) in defenses.iter().enumerate() {
            let _ = write!(out, "{:<12}", defense.name());
            for ei in 0..epsilons.len() {
                let mse = mses[(ri * defenses.len() + di) * epsilons.len() + ei];
                let _ = write!(out, " {:>9.5}", mse);
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "shape: EMF worst at moderate/large epsilon (deniable attack);"
    );
    let _ = writeln!(
        out,
        "trimming overhead produces the small-epsilon inflection (~1.5)."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_equilibrium() {
        let report = table1();
        assert!(report.contains("Hard"));
        assert!(report.contains("pure Nash equilibria"));
        assert!(report.contains("Pareto-dominates the equilibrium: true"));
    }

    #[test]
    fn table2_lists_all_datasets() {
        let report = table2();
        for name in ["CONTROL", "VEHICLE", "LETTER", "TAXI", "CREDITCARD"] {
            assert!(report.contains(name), "missing {name}");
        }
        assert!(report.contains("[1048575]"));
    }

    #[test]
    fn table4_has_ten_rows_and_decays() {
        let report = table4();
        assert!(report.contains("Round_no"));
        assert!(report.contains("50"));
        assert!(report.contains("3.04040"));
        assert!(report.contains("4.33333"));
    }

    #[test]
    fn u_matrix_rendering_is_grid_shaped() {
        let data = creditcard(&mut seeded_rng(1), 512);
        let som = Som::fit(&data, SomConfig::small(), &mut seeded_rng(2));
        let art = render_u_matrix(&som);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines.iter().all(|l| l.chars().count() == 12));
    }

    #[test]
    fn ratio_grid_covers_paper_intervals() {
        let grid = ratio_grid();
        assert_eq!(grid.len(), 3);
        assert!(grid[0].1.iter().all(|&r| r <= 0.01));
        assert!(grid[2].1.iter().all(|&r| (0.2..=0.5).contains(&r)));
    }
}
