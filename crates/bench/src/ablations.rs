//! Ablation studies for the design choices called out in `DESIGN.md §4`.

use crate::sweep::{env_workers, parallel_map_with};
use std::fmt::Write as _;
use trim_core::config;
use trim_core::elastic::CoupledDynamics;
use trim_core::titfortat::{compliance_margin, TitForTat};
use trimgame_ldp::attack::{Attack, InputManipulation};
use trimgame_ldp::duchi::Duchi;
use trimgame_ldp::laplace::LaplaceMechanism;
use trimgame_ldp::mechanism::LdpMechanism;
use trimgame_ldp::piecewise::Piecewise;
use trimgame_numerics::oscillator::CoupledOscillator;
use trimgame_numerics::quantile::{percentile, Interpolation};
use trimgame_numerics::rand_ext::{derive_seed, seeded_rng, standard_normal};
use trimgame_numerics::sketch::P2Quantile;
use trimgame_numerics::stats::mean;
use trimgame_stream::trim::{TrimOp, TrimScratch};

/// Response intensity `k`: convergence speed of the coupled map, analytic
/// equilibrium offset, transient cost, and Theorem 4 oscillation scales.
#[must_use]
pub fn ablate_k() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Ablation: Elastic response intensity k ==");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>12} {:>14} {:>12} {:>12}",
        "k", "conv. rounds", "|A*-Tth|%", "cost@20 (%)", "omega", "period"
    );
    for &k in &[0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let d = CoupledDynamics::new(0.9, k).expect("valid k");
        // Rounds until the gap deviation falls below 1e-6.
        let costs = d.transient_costs(500);
        let conv = costs
            .iter()
            .position(|&c| c < 1e-6)
            .map_or("  >500".to_string(), |i| format!("{i}"));
        // Theorem 4 oscillator with unit masses and spring k.
        let osc = CoupledOscillator::new(1.0, 1.0, k, 1.0, -1.0, 0.0, 0.0);
        let _ = writeln!(
            out,
            "{:>6.2} {:>14} {:>12.4} {:>14.5} {:>12.4} {:>12.2}",
            k,
            conv,
            d.equilibrium_injection_offset() * 100.0,
            d.roundwise_cost(20) * 100.0,
            osc.omega(),
            osc.period()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "larger k responds harder (bigger |A*-Tth|, faster oscillation)"
    );
    let _ = writeln!(
        out,
        "but the discrete map contracts at rate k, so transients last longer."
    );
    out
}

/// Tit-for-tat redundancy `Red`: false-trigger probability on honest LDP
/// rounds versus detection delay under a real attack.
#[must_use]
pub fn ablate_red() -> String {
    let reps = config::repetitions();
    let epsilon = 2.0;
    let rounds = 20;
    let users = 500;
    let mech = Piecewise::new(epsilon);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation: Tit-for-tat redundancy Red (eps={epsilon}, {rounds} rounds) =="
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>6} {:>22} {:>22}",
        "Red", "false-trigger rate", "detection round (30% atk)"
    );

    // Honest population and its calibrated tail standard.
    let population: Vec<f64> = (0..4_000)
        .map(|i| ((i % 1000) as f64 / 500.0 - 1.0) * 0.6)
        .collect();

    let reds = [0.0, 0.01, 0.02, 0.03, 0.05, 0.10];
    // One job per (Red, repetition); each rep's RNG stream derives from
    // the repetition alone, exactly as the sequential loop drew it, so
    // the fan-out changes none of the numbers. Workers reuse their
    // calibration/report buffers across cells.
    let cells = parallel_map_with(
        reds.len() * reps,
        env_workers(),
        || (Vec::new(), Vec::new()),
        |(calib, reports): &mut (Vec<f64>, Vec<f64>), job| {
            let rep = job % reps;
            let red = reds[job / reps];
            let mut rng = seeded_rng(derive_seed(7, rep as u64));
            // Calibration round.
            calib.clear();
            calib.extend(
                (0..users).map(|i| mech.privatize(population[i % population.len()], &mut rng)),
            );
            let ref_value = percentile(calib, 0.95, Interpolation::Linear);

            // (a) honest play: does the trigger false-fire?
            let mut tft = TitForTat::new(0.95, 0.85, 1.0, red).expect("valid");
            for round in 1..=rounds {
                reports.clear();
                reports.extend((0..users).map(|_| {
                    let idx = rng.gen_range(0..population.len());
                    mech.privatize(population[idx], &mut rng)
                }));
                let above = 1.0 - trimgame_numerics::quantile::ecdf(reports, ref_value);
                let quality = 1.0 - (above - 0.05).max(0.0);
                let _ = tft.observe(round, quality);
            }
            let false_trigger = tft.triggered_at().is_some();

            // (b) attacked play: how fast is a 30% input manipulation caught?
            let attack = InputManipulation::new(1.0);
            let mut tft = TitForTat::new(0.95, 0.85, 1.0, red).expect("valid");
            let mut caught = rounds + 5;
            for round in 1..=rounds {
                reports.clear();
                reports.extend((0..users).map(|_| {
                    let idx = rng.gen_range(0..population.len());
                    mech.privatize(population[idx], &mut rng)
                }));
                reports.extend(attack.reports(&mech, (users as f64 * 0.3) as usize, &mut rng));
                let above = 1.0 - trimgame_numerics::quantile::ecdf(reports, ref_value);
                let quality = 1.0 - (above - 0.05).max(0.0);
                let _ = tft.observe(round, quality);
                if let Some(r) = tft.triggered_at() {
                    caught = r;
                    break;
                }
            }
            (false_trigger, caught as f64)
        },
    );
    for (ri, &red) in reds.iter().enumerate() {
        let slice = &cells[ri * reps..(ri + 1) * reps];
        let false_triggers = slice.iter().filter(|c| c.0).count();
        let detection_sum: f64 = slice.iter().map(|c| c.1).sum();
        let _ = writeln!(
            out,
            "{:>6.2} {:>21.1}% {:>22.2}",
            red,
            false_triggers as f64 / reps as f64 * 100.0,
            detection_sum / reps as f64
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Theorem 3's trade-off made operational: tiny Red false-triggers on"
    );
    let _ = writeln!(
        out,
        "LDP jitter (early termination); large Red delays real detection."
    );
    out
}

/// The compliance region of Theorem 3 over the (d, p) grid.
#[must_use]
pub fn ablate_discount() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation: compliance margin delta_max = (d-dp)/(1-dp)*g_ac =="
    );
    let _ = writeln!(
        out,
        "(g_ac = 1; rows d = discount, cols p = undetected-defection prob.)"
    );
    let _ = writeln!(out);
    let ps = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
    let _ = write!(out, "{:<7}", "d\\p");
    for p in ps {
        let _ = write!(out, " {:>7.2}", p);
    }
    let _ = writeln!(out);
    for d in [0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99] {
        let _ = write!(out, "{:<7.2}", d);
        for p in ps {
            let _ = write!(out, " {:>7.4}", compliance_margin(d, p, 1.0));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "margin -> 0 as p -> 1 (defection undetectable => no compromise"
    );
    let _ = writeln!(out, "sustains cooperation); margin -> d*g_ac as p -> 0.");
    out
}

/// One-round trimming defense under each mechanism: does the Fig. 9
/// conclusion depend on the Piecewise Mechanism?
#[must_use]
pub fn ablate_mechanism() -> String {
    let reps = config::repetitions();
    let ratio = 0.2;
    let users = 2_000;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation: mechanism choice (ratio {ratio}, debiased trim at p95) =="
    );
    let _ = writeln!(out);
    let _ = write!(out, "{:<12}", "mechanism");
    let epsilons = [1.0, 2.0, 3.0, 4.0, 5.0];
    for eps in epsilons {
        let _ = write!(out, " {:>10}", format!("e={eps}"));
    }
    let _ = writeln!(out);

    let population: Vec<f64> = {
        let mut rng = seeded_rng(99);
        (0..4_000)
            .map(|_| (0.1 + 0.4 * standard_normal(&mut rng)).clamp(-1.0, 1.0))
            .collect()
    };
    let truth = mean(&population);

    // One epsilon column per job; workers reuse calibration/report/trim
    // buffers across columns, and the absolute cut runs through the
    // in-place SIMD trim kernel instead of the allocating facade.
    fn trimmed_mse<M: LdpMechanism + Sync>(
        make: impl Fn(f64) -> M + Sync,
        epsilons: &[f64],
        population: &[f64],
        truth: f64,
        ratio: f64,
        users: usize,
        reps: usize,
    ) -> Vec<f64> {
        parallel_map_with(
            epsilons.len(),
            env_workers(),
            || (Vec::new(), Vec::new(), Vec::new(), TrimScratch::new()),
            |(calib, reports, below, scratch): &mut (Vec<f64>, Vec<f64>, Vec<f64>, TrimScratch),
             ei| {
                let mech = make(epsilons[ei]);
                let attack = InputManipulation::new(1.0);
                let mut total = 0.0;
                for rep in 0..reps {
                    let mut rng = seeded_rng(derive_seed(3, rep as u64));
                    calib.clear();
                    calib.extend(
                        (0..users)
                            .map(|i| mech.privatize(population[i % population.len()], &mut rng)),
                    );
                    calib.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
                    let cut = trimgame_numerics::quantile::percentile_sorted(
                        calib,
                        0.95,
                        Interpolation::Linear,
                    );
                    below.clear();
                    below.extend(calib.iter().copied().filter(|&v| v <= cut));
                    let bias = mean(calib) - mean(below);

                    reports.clear();
                    reports.extend((0..users).map(|_| {
                        let idx = rng.gen_range(0..population.len());
                        mech.privatize(population[idx], &mut rng)
                    }));
                    reports.extend(attack.reports(
                        &mech,
                        (users as f64 * ratio) as usize,
                        &mut rng,
                    ));
                    let _ = TrimOp::Absolute(cut).apply_in_place(reports, scratch);
                    let est = mean(scratch.kept()) + bias;
                    total += (est - truth) * (est - truth);
                }
                total / reps as f64
            },
        )
    }

    let rows: Vec<(&str, Vec<f64>)> = vec![
        (
            "Piecewise",
            trimmed_mse(
                Piecewise::new,
                &epsilons,
                &population,
                truth,
                ratio,
                users,
                reps,
            ),
        ),
        (
            "Duchi",
            trimmed_mse(
                Duchi::new,
                &epsilons,
                &population,
                truth,
                ratio,
                users,
                reps,
            ),
        ),
        (
            "Laplace",
            trimmed_mse(
                LaplaceMechanism::new,
                &epsilons,
                &population,
                truth,
                ratio,
                users,
                reps,
            ),
        ),
    ];
    for (name, mses) in rows {
        let _ = write!(out, "{:<12}", name);
        for m in mses {
            let _ = write!(out, " {:>10.5}", m);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Duchi's binary output defeats value trimming (attack reports are"
    );
    let _ = writeln!(
        out,
        "literally honest outputs), so the defense needs a rich output"
    );
    let _ = writeln!(
        out,
        "space — which is why Fig. 9 runs on the Piecewise Mechanism."
    );
    out
}

/// Exact percentile vs. the P² streaming sketch as the threshold source.
#[must_use]
pub fn ablate_sketch() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Ablation: exact percentile vs P^2 streaming sketch =="
    );
    let _ = writeln!(out);
    let n = 100_000;
    let mut rng = seeded_rng(123);
    let values: Vec<f64> = (0..n)
        .map(|_| standard_normal(&mut rng) * 10.0 + 50.0)
        .collect();

    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12} {:>16}",
        "p", "exact", "sketch", "abs err", "mis-trimmed (%)"
    );
    for &p in &[0.85, 0.90, 0.95, 0.99] {
        let exact = percentile(&values, p, Interpolation::Linear);
        let mut sketch = P2Quantile::new(p);
        for &v in &values {
            sketch.insert(v);
        }
        let est = sketch.estimate().expect("non-empty stream");
        // How many points land between the two cuts (trimmed by one
        // threshold but not the other)?
        let (lo, hi) = if exact <= est {
            (exact, est)
        } else {
            (est, exact)
        };
        let between = values.iter().filter(|&&v| v > lo && v <= hi).count();
        let _ = writeln!(
            out,
            "{:>6.2} {:>12.4} {:>12.4} {:>12.5} {:>15.3}%",
            p,
            exact,
            est,
            (exact - est).abs(),
            between as f64 / n as f64 * 100.0
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "the sketch holds 5 markers in O(1) memory; threshold error stays"
    );
    let _ = writeln!(
        out,
        "well below the 1-percentile granularity the game plays at."
    );
    out
}

use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablate_k_lists_all_ks() {
        let report = ablate_k();
        for k in ["0.05", "0.10", "0.90"] {
            assert!(
                report.contains(&format!(
                    "{:>6}",
                    format!("{:.2}", k.parse::<f64>().unwrap())
                )),
                "missing k={k}"
            );
        }
    }

    #[test]
    fn ablate_discount_monotone_rows() {
        let report = ablate_discount();
        assert!(report.contains("d\\p"));
        // p = 1 column must be exactly zero for every d.
        for line in report.lines().filter(|l| l.starts_with('0')) {
            assert!(line.trim_end().ends_with("0.0000"), "line: {line}");
        }
    }

    #[test]
    fn ablate_sketch_reports_small_errors() {
        let report = ablate_sketch();
        assert!(report.contains("mis-trimmed"));
        assert!(report.contains("0.85"));
    }
}
