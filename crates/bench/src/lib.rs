//! Experiment harness regenerating every table and figure in the paper's
//! evaluation (Section VI), plus the ablations called out in `DESIGN.md`.
//!
//! Each experiment is a pure function returning a formatted report, so the
//! CLI (`src/bin/expt.rs`), the criterion benches and the tests all share
//! one implementation. Scaling knobs:
//!
//! * `TRIMGAME_REPS` — repetitions per point (default 10; paper used 100);
//! * `TRIMGAME_SCALE` — instance divisor for the large datasets
//!   (default 64; 1 = full Table II sizes).

pub mod ablations;
pub mod collector;
pub mod double_oracle;
pub mod empirical;
pub mod experiments;
pub mod perf;
pub mod sweep;

/// All experiment ids accepted by the `expt` binary, in paper order.
pub const EXPERIMENTS: [&str; 19] = [
    "table1",
    "table2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "table3",
    "table4",
    "fig9",
    "ablate-k",
    "ablate-red",
    "ablate-discount",
    "ablate-mechanism",
    "ablate-sketch",
    "sweep",
    "equilibrium",
    "collect",
    "bench",
];

/// Runs one experiment by id, returning its report.
///
/// # Panics
/// Panics on an unknown id (the CLI validates first).
#[must_use]
pub fn run_experiment(id: &str) -> String {
    match id {
        "table1" => experiments::table1(),
        "table2" => experiments::table2(),
        "fig4" => experiments::fig45(0.90),
        "fig5" => experiments::fig45(0.97),
        "fig6" => experiments::fig6(),
        "fig7" => experiments::fig7(),
        "fig8" => experiments::fig8(),
        "table3" => experiments::table3(),
        "table4" => experiments::table4(),
        "fig9" => experiments::fig9(),
        "ablate-k" => ablations::ablate_k(),
        "ablate-red" => ablations::ablate_red(),
        "ablate-discount" => ablations::ablate_discount(),
        "ablate-mechanism" => ablations::ablate_mechanism(),
        "ablate-sketch" => ablations::ablate_sketch(),
        "sweep" => sweep::sweep_report(),
        "equilibrium" => empirical::equilibrium_report_from_env(),
        "collect" => collector::collect_report(),
        "bench" => perf::bench_report(),
        other => panic!("unknown experiment id: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_experiments_produce_reports() {
        for id in ["table1", "table2", "table4", "ablate-discount", "ablate-k"] {
            let report = run_experiment(id);
            assert!(!report.is_empty(), "{id} produced an empty report");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = run_experiment("fig99");
    }

    #[test]
    fn id_list_is_consistent() {
        assert_eq!(EXPERIMENTS.len(), 19);
        assert!(EXPERIMENTS.contains(&"fig9"));
        assert!(EXPERIMENTS.contains(&"sweep"));
        assert!(EXPERIMENTS.contains(&"equilibrium"));
        assert!(EXPERIMENTS.contains(&"collect"));
        assert!(EXPERIMENTS.contains(&"bench"));
    }
}
