//! CSV loading for real datasets.
//!
//! The synthetic generators in [`crate::shapes`] stand in for the paper's
//! datasets; users who *do* have the real files (UCI Control/Vehicle/
//! Letter, the Kaggle credit-card set, NYC taxi extracts) can load them
//! here and run every experiment unchanged. The format is minimal,
//! dependency-free CSV: one row per line, numeric feature columns, with
//! an optional integer label column.

use crate::dataset::Dataset;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Errors raised while loading a CSV dataset.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell could not be parsed as a number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// The offending cell content.
        cell: String,
    },
    /// A row had a different arity than the first row.
    Ragged {
        /// 1-based line number.
        line: usize,
        /// Expected column count.
        expected: usize,
        /// Found column count.
        found: usize,
    },
    /// The file contained no data rows.
    Empty,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line, column, cell } => {
                write!(
                    f,
                    "line {line}, column {column}: cannot parse {cell:?} as a number"
                )
            }
            LoadError::Ragged {
                line,
                expected,
                found,
            } => write!(f, "line {line}: expected {expected} columns, found {found}"),
            LoadError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Options for CSV parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvOptions {
    /// Skip the first line (header).
    pub has_header: bool,
    /// Treat the *last* column as an integer class label.
    pub label_last_column: bool,
    /// Field delimiter.
    pub delimiter: char,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            has_header: false,
            label_last_column: false,
            delimiter: ',',
        }
    }
}

/// Parses a dataset from any reader.
///
/// # Errors
/// Returns [`LoadError`] on I/O failure, unparsable cells, ragged rows or
/// an empty body. Blank lines are skipped.
pub fn read_csv<R: BufRead>(
    reader: R,
    name: &str,
    clusters: usize,
    options: CsvOptions,
) -> Result<Dataset, LoadError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut expected_cols: Option<usize> = None;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        if options.has_header && idx == 0 {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cells: Vec<&str> = trimmed.split(options.delimiter).collect();
        if let Some(expected) = expected_cols {
            if cells.len() != expected {
                return Err(LoadError::Ragged {
                    line: line_no,
                    expected,
                    found: cells.len(),
                });
            }
        } else {
            expected_cols = Some(cells.len());
        }
        let feature_count = if options.label_last_column {
            cells.len() - 1
        } else {
            cells.len()
        };
        let mut row = Vec::with_capacity(feature_count);
        for (col, cell) in cells.iter().take(feature_count).enumerate() {
            let v: f64 = cell.trim().parse().map_err(|_| LoadError::Parse {
                line: line_no,
                column: col,
                cell: (*cell).to_string(),
            })?;
            row.push(v);
        }
        if options.label_last_column {
            let cell = cells[cells.len() - 1].trim();
            // Accept both integer labels and float-formatted integers.
            let label = cell
                .parse::<usize>()
                .or_else(|_| cell.parse::<f64>().map(|f| f as usize))
                .map_err(|_| LoadError::Parse {
                    line: line_no,
                    column: cells.len() - 1,
                    cell: cell.to_string(),
                })?;
            labels.push(label);
        }
        rows.push(row);
    }

    if rows.is_empty() {
        return Err(LoadError::Empty);
    }
    let labels = options.label_last_column.then_some(labels);
    Ok(Dataset::from_rows(name, &rows, labels, clusters))
}

/// Loads a dataset from a CSV file on disk.
///
/// # Errors
/// See [`read_csv`].
pub fn load_csv(
    path: impl AsRef<Path>,
    name: &str,
    clusters: usize,
    options: CsvOptions,
) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(path)?;
    read_csv(std::io::BufReader::new(file), name, clusters, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_unlabelled_csv() {
        let csv = "1.0,2.0,3.0\n4.0,5.0,6.0\n";
        let d = read_csv(Cursor::new(csv), "t", 2, CsvOptions::default()).unwrap();
        assert_eq!(d.rows(), 2);
        assert_eq!(d.cols(), 3);
        assert_eq!(d.row(1), &[4.0, 5.0, 6.0]);
        assert!(d.labels().is_none());
        assert_eq!(d.clusters(), 2);
    }

    #[test]
    fn parses_labelled_csv_with_header() {
        let csv = "f1,f2,class\n0.5,1.5,0\n2.5,3.5,1\n";
        let opts = CsvOptions {
            has_header: true,
            label_last_column: true,
            ..CsvOptions::default()
        };
        let d = read_csv(Cursor::new(csv), "t", 2, opts).unwrap();
        assert_eq!(d.rows(), 2);
        assert_eq!(d.cols(), 2);
        assert_eq!(d.labels(), Some(&[0, 1][..]));
    }

    #[test]
    fn accepts_float_formatted_labels() {
        let csv = "1.0,0.0\n2.0,1.0\n";
        let opts = CsvOptions {
            label_last_column: true,
            ..CsvOptions::default()
        };
        let d = read_csv(Cursor::new(csv), "t", 2, opts).unwrap();
        assert_eq!(d.labels(), Some(&[0, 1][..]));
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "1.0\n\n2.0\n\n";
        let d = read_csv(Cursor::new(csv), "t", 1, CsvOptions::default()).unwrap();
        assert_eq!(d.rows(), 2);
    }

    #[test]
    fn custom_delimiter() {
        let csv = "1.0;2.0\n3.0;4.0\n";
        let opts = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let d = read_csv(Cursor::new(csv), "t", 1, opts).unwrap();
        assert_eq!(d.cols(), 2);
    }

    #[test]
    fn ragged_rows_rejected_with_location() {
        let csv = "1.0,2.0\n3.0\n";
        let err = read_csv(Cursor::new(csv), "t", 1, CsvOptions::default()).unwrap_err();
        match err {
            LoadError::Ragged {
                line,
                expected,
                found,
            } => {
                assert_eq!(line, 2);
                assert_eq!(expected, 2);
                assert_eq!(found, 1);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn parse_errors_carry_location() {
        let csv = "1.0,oops\n";
        let err = read_csv(Cursor::new(csv), "t", 1, CsvOptions::default()).unwrap_err();
        match err {
            LoadError::Parse { line, column, cell } => {
                assert_eq!(line, 1);
                assert_eq!(column, 1);
                assert_eq!(cell, "oops");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn empty_body_rejected() {
        let err = read_csv(Cursor::new(""), "t", 1, CsvOptions::default()).unwrap_err();
        assert!(matches!(err, LoadError::Empty));
        // Header-only file is also empty.
        let opts = CsvOptions {
            has_header: true,
            ..CsvOptions::default()
        };
        let err = read_csv(Cursor::new("a,b\n"), "t", 1, opts).unwrap_err();
        assert!(matches!(err, LoadError::Empty));
    }

    #[test]
    fn load_csv_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("trimgame_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        std::fs::write(&path, "1.0,2.0\n3.0,4.0\n").unwrap();
        let d = load_csv(&path, "disk", 1, CsvOptions::default()).unwrap();
        assert_eq!(d.rows(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = LoadError::Parse {
            line: 3,
            column: 1,
            cell: "x".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = LoadError::Ragged {
            line: 2,
            expected: 5,
            found: 4,
        };
        assert!(e.to_string().contains("expected 5"));
        assert!(LoadError::Empty.to_string().contains("no data rows"));
    }
}
