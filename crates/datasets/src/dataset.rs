//! Dense row-major dataset container.
//!
//! All learners and simulations in the workspace consume this one type. It
//! deliberately stays close to "a matrix plus optional labels": the paper's
//! pipelines (k-means, SVM, SOM, LDP aggregation) need nothing richer, and
//! a flat `Vec<f64>` keeps row access allocation-free.

use std::fmt;

/// A dense numeric dataset: `rows × cols` values in row-major order, with
/// optional integer class labels and a declared cluster count (Table II's
/// "Clusters" column).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    cols: usize,
    data: Vec<f64>,
    labels: Option<Vec<usize>>,
    clusters: usize,
}

/// Summary of a dataset as reported in the paper's Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name (upper-cased in Table II).
    pub name: String,
    /// Number of instances (rows).
    pub instances: usize,
    /// Number of features (columns).
    pub features: usize,
    /// Number of clusters/classes.
    pub clusters: usize,
}

impl fmt::Display for DatasetInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>9} {:>9} {:>9}",
            self.name, self.instances, self.features, self.clusters
        )
    }
}

impl Dataset {
    /// Creates a dataset from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `cols`, if `cols == 0`,
    /// or if `labels` is present with a length different from the row count.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        cols: usize,
        data: Vec<f64>,
        labels: Option<Vec<usize>>,
        clusters: usize,
    ) -> Self {
        assert!(cols > 0, "a dataset needs at least one column");
        assert!(
            data.len().is_multiple_of(cols),
            "data length {} is not a multiple of cols {}",
            data.len(),
            cols
        );
        if let Some(ref l) = labels {
            assert_eq!(
                l.len(),
                data.len() / cols,
                "labels length must equal the row count"
            );
        }
        Self {
            name: name.into(),
            cols,
            data,
            labels,
            clusters,
        }
    }

    /// Builds a dataset from per-row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(
        name: impl Into<String>,
        rows: &[Vec<f64>],
        labels: Option<Vec<usize>>,
        clusters: usize,
    ) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self::new(name, cols, data, labels, clusters)
    }

    /// Dataset name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (instances).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len() / self.cols
    }

    /// Number of columns (features).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Declared number of clusters/classes.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Borrow of row `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over all rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of range");
        self.iter_rows().map(|r| r[j]).collect()
    }

    /// The raw row-major buffer.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Class labels if present.
    #[must_use]
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Label of row `i`, if labels are present.
    #[must_use]
    pub fn label(&self, i: usize) -> Option<usize> {
        self.labels.as_ref().map(|l| l[i])
    }

    /// Table II style summary.
    #[must_use]
    pub fn info(&self) -> DatasetInfo {
        DatasetInfo {
            name: self.name.to_uppercase(),
            instances: self.rows(),
            features: self.cols,
            clusters: self.clusters,
        }
    }

    /// Appends a row (and optional label; required iff the dataset is
    /// labelled).
    ///
    /// # Panics
    /// Panics on arity mismatch between the row, the dataset width, and the
    /// labelling state.
    pub fn push_row(&mut self, row: &[f64], label: Option<usize>) {
        assert_eq!(row.len(), self.cols, "row arity mismatch");
        match (&mut self.labels, label) {
            (Some(labels), Some(l)) => labels.push(l),
            (None, None) => {}
            (Some(_), None) => panic!("labelled dataset requires a label"),
            (None, Some(_)) => panic!("unlabelled dataset cannot take a label"),
        }
        self.data.extend_from_slice(row);
    }

    /// Returns the subset of rows for which `keep` is true, preserving
    /// labels.
    ///
    /// # Panics
    /// Panics if `keep.len() != rows()`.
    #[must_use]
    pub fn filter(&self, keep: &[bool]) -> Dataset {
        assert_eq!(keep.len(), self.rows(), "mask length mismatch");
        let mut data = Vec::new();
        let mut labels = self.labels.as_ref().map(|_| Vec::new());
        for (i, row) in self.iter_rows().enumerate() {
            if keep[i] {
                data.extend_from_slice(row);
                if let (Some(out), Some(all)) = (&mut labels, &self.labels) {
                    out.push(all[i]);
                }
            }
        }
        Dataset {
            name: self.name.clone(),
            cols: self.cols,
            data,
            labels,
            clusters: self.clusters,
        }
    }

    /// Mean of every column (the global centroid).
    #[must_use]
    pub fn centroid(&self) -> Vec<f64> {
        let n = self.rows();
        let mut c = vec![0.0; self.cols];
        if n == 0 {
            return c;
        }
        for row in self.iter_rows() {
            for (acc, v) in c.iter_mut().zip(row) {
                *acc += v;
            }
        }
        for acc in &mut c {
            *acc /= n as f64;
        }
        c
    }

    /// Per-row Euclidean distance to `point`.
    ///
    /// # Panics
    /// Panics if `point.len() != cols()`.
    #[must_use]
    pub fn distances_to(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.cols, "point arity mismatch");
        self.iter_rows()
            .map(|r| trimgame_numerics::stats::euclidean(r, point))
            .collect()
    }

    /// Min-max normalizes every column into `[lo, hi]` in place. Constant
    /// columns map to the interval midpoint.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn normalize_columns(&mut self, lo: f64, hi: f64) {
        assert!(lo < hi, "invalid target interval [{lo}, {hi}]");
        let rows = self.rows();
        if rows == 0 {
            return;
        }
        for j in 0..self.cols {
            let mut cmin = f64::INFINITY;
            let mut cmax = f64::NEG_INFINITY;
            for i in 0..rows {
                let v = self.data[i * self.cols + j];
                cmin = cmin.min(v);
                cmax = cmax.max(v);
            }
            let span = cmax - cmin;
            for i in 0..rows {
                let v = &mut self.data[i * self.cols + j];
                *v = if span == 0.0 {
                    0.5 * (lo + hi)
                } else {
                    lo + (*v - cmin) / span * (hi - lo)
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(
            "toy",
            2,
            vec![0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 3.0, 2.0],
            Some(vec![0, 0, 1, 1]),
            2,
        )
    }

    #[test]
    fn shape_accessors() {
        let d = small();
        assert_eq!(d.rows(), 4);
        assert_eq!(d.cols(), 2);
        assert_eq!(d.clusters(), 2);
        assert_eq!(d.name(), "toy");
        assert_eq!(d.row(2), &[0.0, 2.0]);
        assert_eq!(d.column(1), vec![0.0, 0.0, 2.0, 2.0]);
        assert_eq!(d.label(3), Some(1));
    }

    #[test]
    fn info_matches_table_ii_format() {
        let d = small();
        let info = d.info();
        assert_eq!(info.name, "TOY");
        assert_eq!(info.instances, 4);
        assert_eq!(info.features, 2);
        assert_eq!(info.clusters, 2);
        let line = info.to_string();
        assert!(line.contains("TOY"));
        assert!(line.contains('4'));
    }

    #[test]
    #[should_panic(expected = "multiple of cols")]
    fn ragged_data_rejected() {
        let _ = Dataset::new("bad", 3, vec![1.0, 2.0], None, 1);
    }

    #[test]
    #[should_panic(expected = "labels length")]
    fn bad_labels_rejected() {
        let _ = Dataset::new("bad", 1, vec![1.0, 2.0], Some(vec![0]), 1);
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let d = Dataset::from_rows("r", &rows, None, 1);
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert_eq!(d.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn push_row_labelled() {
        let mut d = small();
        d.push_row(&[9.0, 9.0], Some(0));
        assert_eq!(d.rows(), 5);
        assert_eq!(d.label(4), Some(0));
    }

    #[test]
    #[should_panic(expected = "requires a label")]
    fn push_row_needs_label_when_labelled() {
        let mut d = small();
        d.push_row(&[9.0, 9.0], None);
    }

    #[test]
    fn filter_keeps_labels_aligned() {
        let d = small();
        let kept = d.filter(&[true, false, false, true]);
        assert_eq!(kept.rows(), 2);
        assert_eq!(kept.row(0), &[0.0, 0.0]);
        assert_eq!(kept.row(1), &[3.0, 2.0]);
        assert_eq!(kept.labels(), Some(&[0, 1][..]));
    }

    #[test]
    fn centroid_of_small() {
        let d = small();
        let c = d.centroid();
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distances_to_centroid() {
        let d = small();
        let dist = d.distances_to(&[0.0, 0.0]);
        assert!((dist[0] - 0.0).abs() < 1e-12);
        assert!((dist[1] - 1.0).abs() < 1e-12);
        assert!((dist[3] - (13.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normalize_columns_unit_interval() {
        let mut d = Dataset::new("n", 2, vec![0.0, 5.0, 10.0, 5.0, 5.0, 5.0], None, 1);
        d.normalize_columns(-1.0, 1.0);
        assert_eq!(d.row(0)[0], -1.0);
        assert_eq!(d.row(1)[0], 1.0);
        assert_eq!(d.row(2)[0], 0.0);
        // Constant column maps to midpoint 0.
        for i in 0..3 {
            assert_eq!(d.row(i)[1], 0.0);
        }
    }

    #[test]
    fn iter_rows_covers_all() {
        let d = small();
        assert_eq!(d.iter_rows().count(), 4);
    }
}
