//! Dataset substrate for the `trimgame` workspace.
//!
//! The paper evaluates on five real-world numerical datasets (Table II):
//! Control, Vehicle and Letter (UCI), Taxi (2018-January NYC pick-up times)
//! and Creditcard (PCA-transformed card transactions). Those datasets are
//! not redistributable inside this repository, so this crate provides
//! *seeded synthetic generators with identical shape* — instance counts,
//! feature counts, cluster counts, skew structure — as documented in
//! `DESIGN.md §3`. The Control generator follows the published recipe of
//! the original UCI synthetic control-chart generator, which was itself
//! synthetic.
//!
//! Modules:
//! * [`dataset`] — the dense row-major [`Dataset`] container.
//! * [`synthetic`] — Gaussian-mixture machinery for arbitrary shapes.
//! * [`shapes`] — the five named generators matching Table II.
//! * [`stream`] — per-round batch streams for the online collection game.
//! * [`poison`] — poison-value injectors (single point, range, mixed
//!   strategy) operating in percentile space, as in Section VI-A.
//! * [`percentile`] — per-feature and distance-based percentile helpers.

pub mod dataset;
pub mod loader;
pub mod percentile;
pub mod poison;
pub mod shapes;
pub mod stream;
pub mod synthetic;

pub use dataset::{Dataset, DatasetInfo};
pub use loader::{load_csv, read_csv, CsvOptions, LoadError};
pub use poison::{InjectionPosition, PoisonBatch, PoisonSpec};
pub use shapes::{control, creditcard, letter, taxi, vehicle, Shape};
pub use stream::RoundStream;
pub use synthetic::{GaussianComponent, GmmSpec};
