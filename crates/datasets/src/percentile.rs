//! Percentile helpers over datasets.
//!
//! The multi-dimensional experiments (k-means, SVM, SOM) use *distance-based*
//! trimming: each point's distance to the data centroid is the scalar the
//! percentile game is played on (the classic distance-based sanitization of
//! Kloft & Laskov cited in the paper's introduction). These helpers project
//! datasets to those scalars.

use crate::dataset::Dataset;
use trimgame_numerics::quantile::{percentile, Interpolation};

/// Value at percentile `p` of feature `j`.
///
/// # Panics
/// Panics if the dataset is empty, `j` is out of range, or `p ∉ [0,1]`.
#[must_use]
pub fn feature_percentile(d: &Dataset, j: usize, p: f64) -> f64 {
    percentile(&d.column(j), p, Interpolation::Linear)
}

/// Value at percentile `p` of the distance-to-`center` distribution.
///
/// # Panics
/// Panics if the dataset is empty or dimensions mismatch.
#[must_use]
pub fn distance_percentile(d: &Dataset, center: &[f64], p: f64) -> f64 {
    percentile(&d.distances_to(center), p, Interpolation::Linear)
}

/// Distances of every row to the dataset's own centroid — the scalar stream
/// the trimming game operates on for multi-dimensional data.
#[must_use]
pub fn centroid_distances(d: &Dataset) -> Vec<f64> {
    d.distances_to(&d.centroid())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            2,
            vec![0.0, 0.0, 2.0, 0.0, 4.0, 0.0, 6.0, 0.0, 8.0, 0.0],
            None,
            1,
        )
    }

    #[test]
    fn feature_percentile_median() {
        assert_eq!(feature_percentile(&toy(), 0, 0.5), 4.0);
        assert_eq!(feature_percentile(&toy(), 1, 0.5), 0.0);
    }

    #[test]
    fn distance_percentile_from_origin() {
        let d = toy();
        // Distances from origin along x: 0, 2, 4, 6, 8.
        assert_eq!(distance_percentile(&d, &[0.0, 0.0], 1.0), 8.0);
        assert_eq!(distance_percentile(&d, &[0.0, 0.0], 0.5), 4.0);
    }

    #[test]
    fn centroid_distances_are_symmetric_for_toy() {
        let d = toy();
        // Centroid is (4, 0); distances are 4, 2, 0, 2, 4.
        let dist = centroid_distances(&d);
        assert_eq!(dist, vec![4.0, 2.0, 0.0, 2.0, 4.0]);
    }
}
