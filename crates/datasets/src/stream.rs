//! Per-round batch streams.
//!
//! Fig. 3's infinite collection game draws "the same amount of data" from
//! a data stream in every round (step ③/④). [`RoundStream`] models that:
//! a value pool (the population distribution) sampled with replacement in
//! fixed-size rounds. Sampling with replacement makes every round an i.i.d.
//! draw from the empirical distribution, which is exactly the streaming
//! abstraction the analytical model assumes (`r` as a continuum).

use rand::Rng;

/// An endless stream of fixed-size benign batches drawn i.i.d. (with
/// replacement) from a value pool.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStream {
    pool: Vec<f64>,
    batch: usize,
    rounds_emitted: usize,
}

impl RoundStream {
    /// Creates a stream over `pool` emitting `batch` values per round.
    ///
    /// # Panics
    /// Panics if the pool is empty or `batch == 0`.
    #[must_use]
    pub fn new(pool: Vec<f64>, batch: usize) -> Self {
        assert!(!pool.is_empty(), "stream pool must be non-empty");
        assert!(batch > 0, "batch size must be positive");
        Self {
            pool,
            batch,
            rounds_emitted: 0,
        }
    }

    /// Batch size per round.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// Number of rounds emitted so far.
    #[must_use]
    pub fn rounds_emitted(&self) -> usize {
        self.rounds_emitted
    }

    /// The backing pool.
    #[must_use]
    pub fn pool(&self) -> &[f64] {
        &self.pool
    }

    /// Draws the next round's benign batch.
    pub fn next_round<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        self.rounds_emitted += 1;
        (0..self.batch)
            .map(|_| self.pool[rng.gen_range(0..self.pool.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::mean;

    #[test]
    fn rounds_have_requested_size() {
        let mut s = RoundStream::new(vec![1.0, 2.0, 3.0], 10);
        let mut rng = seeded_rng(1);
        let r = s.next_round(&mut rng);
        assert_eq!(r.len(), 10);
        assert_eq!(s.rounds_emitted(), 1);
        let _ = s.next_round(&mut rng);
        assert_eq!(s.rounds_emitted(), 2);
    }

    #[test]
    fn values_come_from_pool() {
        let pool = vec![5.0, 7.0, 9.0];
        let mut s = RoundStream::new(pool.clone(), 100);
        let mut rng = seeded_rng(2);
        for v in s.next_round(&mut rng) {
            assert!(pool.contains(&v));
        }
    }

    #[test]
    fn round_mean_tracks_pool_mean() {
        let pool: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
        let mut s = RoundStream::new(pool.clone(), 5_000);
        let mut rng = seeded_rng(3);
        let r = s.next_round(&mut rng);
        assert!((mean(&r) - mean(&pool)).abs() < 2.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let pool: Vec<f64> = (0..100).map(f64::from).collect();
        let mut a = RoundStream::new(pool.clone(), 50);
        let mut b = RoundStream::new(pool, 50);
        assert_eq!(
            a.next_round(&mut seeded_rng(9)),
            b.next_round(&mut seeded_rng(9))
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_rejected() {
        let _ = RoundStream::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_rejected() {
        let _ = RoundStream::new(vec![1.0], 0);
    }
}
