//! Gaussian-mixture dataset generation.
//!
//! The substitution policy (DESIGN.md §3): where the paper uses a real
//! dataset we cannot redistribute, we generate a seeded Gaussian mixture
//! with the same instance/feature/cluster shape. This module is the
//! machinery; [`crate::shapes`] instantiates it for the five named sets.

use crate::dataset::Dataset;
use rand::Rng;
use trimgame_numerics::rand_ext::standard_normal;

/// One spherical-ish Gaussian component: a mean vector with per-feature
/// standard deviations and a mixture weight.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianComponent {
    /// Component mean (length = feature count).
    pub mean: Vec<f64>,
    /// Per-feature standard deviation (length = feature count).
    pub sd: Vec<f64>,
    /// Relative weight (need not be normalized across components).
    pub weight: f64,
}

impl GaussianComponent {
    /// Spherical component: equal standard deviation in every dimension.
    ///
    /// # Panics
    /// Panics if `sd < 0` or `weight <= 0`.
    #[must_use]
    pub fn spherical(mean: Vec<f64>, sd: f64, weight: f64) -> Self {
        assert!(sd >= 0.0, "sd must be non-negative");
        assert!(weight > 0.0, "weight must be positive");
        let dim = mean.len();
        Self {
            mean,
            sd: vec![sd; dim],
            weight,
        }
    }
}

/// A Gaussian mixture specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GmmSpec {
    components: Vec<GaussianComponent>,
}

impl GmmSpec {
    /// Creates a spec from components.
    ///
    /// # Panics
    /// Panics if components are empty or have inconsistent dimensions.
    #[must_use]
    pub fn new(components: Vec<GaussianComponent>) -> Self {
        assert!(!components.is_empty(), "GMM needs at least one component");
        let dim = components[0].mean.len();
        for c in &components {
            assert_eq!(c.mean.len(), dim, "inconsistent component dimension");
            assert_eq!(c.sd.len(), dim, "inconsistent sd dimension");
        }
        Self { components }
    }

    /// Generates `k` well-separated spherical components in `dim`
    /// dimensions: means on a scaled random hypercube lattice, separation
    /// `sep`, standard deviation `sd`.
    #[must_use]
    pub fn separated<R: Rng + ?Sized>(
        k: usize,
        dim: usize,
        sep: f64,
        sd: f64,
        rng: &mut R,
    ) -> Self {
        assert!(k > 0 && dim > 0, "k and dim must be positive");
        let mut components = Vec::with_capacity(k);
        for i in 0..k {
            // Deterministic lattice direction per component + small jitter:
            // component i gets mean sep * e_{i mod dim} * (1 + i / dim).
            let mut mean = vec![0.0; dim];
            let axis = i % dim;
            let ring = (i / dim + 1) as f64;
            mean[axis] = sep * ring;
            // Alternate sign per ring to spread components around origin.
            if (i / dim) % 2 == 1 {
                mean[axis] = -mean[axis];
            }
            for m in &mut mean {
                *m += 0.05 * sep * standard_normal(rng);
            }
            components.push(GaussianComponent::spherical(mean, sd, 1.0));
        }
        Self::new(components)
    }

    /// Number of components.
    #[must_use]
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Feature dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.components[0].mean.len()
    }

    /// Component means.
    #[must_use]
    pub fn means(&self) -> Vec<&[f64]> {
        self.components.iter().map(|c| c.mean.as_slice()).collect()
    }

    /// Samples `n` points, returning a labelled [`Dataset`] whose labels are
    /// the generating component indices.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(&self, name: &str, n: usize, rng: &mut R) -> Dataset {
        let dim = self.dim();
        let total_w: f64 = self.components.iter().map(|c| c.weight).sum();
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let mut t = rng.gen::<f64>() * total_w;
            let mut idx = 0;
            for (i, c) in self.components.iter().enumerate() {
                if t < c.weight {
                    idx = i;
                    break;
                }
                t -= c.weight;
                idx = i;
            }
            let c = &self.components[idx];
            for d in 0..dim {
                data.push(c.mean[d] + c.sd[d] * standard_normal(rng));
            }
            labels.push(idx);
        }
        Dataset::new(name, dim, data, Some(labels), self.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::mean;

    #[test]
    fn generate_has_requested_shape() {
        let mut rng = seeded_rng(1);
        let spec = GmmSpec::separated(3, 4, 10.0, 0.5, &mut rng);
        let d = spec.generate("g", 300, &mut rng);
        assert_eq!(d.rows(), 300);
        assert_eq!(d.cols(), 4);
        assert_eq!(d.clusters(), 3);
        assert!(d.labels().is_some());
        assert!(d.labels().unwrap().iter().all(|&l| l < 3));
    }

    #[test]
    fn component_means_are_recovered() {
        let mut rng = seeded_rng(2);
        let spec = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![-5.0, 0.0], 0.1, 1.0),
            GaussianComponent::spherical(vec![5.0, 0.0], 0.1, 1.0),
        ]);
        let d = spec.generate("two", 2000, &mut rng);
        let labels = d.labels().unwrap().to_vec();
        for cls in 0..2 {
            let xs: Vec<f64> = d
                .iter_rows()
                .zip(&labels)
                .filter(|(_, &l)| l == cls)
                .map(|(r, _)| r[0])
                .collect();
            let target = if cls == 0 { -5.0 } else { 5.0 };
            assert!(
                (mean(&xs) - target).abs() < 0.05,
                "class {cls} mean {}",
                mean(&xs)
            );
        }
    }

    #[test]
    fn weights_control_proportions() {
        let mut rng = seeded_rng(3);
        let spec = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![0.0], 1.0, 9.0),
            GaussianComponent::spherical(vec![10.0], 1.0, 1.0),
        ]);
        let d = spec.generate("w", 10_000, &mut rng);
        let minority = d.labels().unwrap().iter().filter(|&&l| l == 1).count();
        let frac = minority as f64 / 10_000.0;
        assert!((frac - 0.1).abs() < 0.02, "minority fraction {frac}");
    }

    #[test]
    fn separated_components_are_distinct() {
        let mut rng = seeded_rng(4);
        let spec = GmmSpec::separated(6, 8, 20.0, 1.0, &mut rng);
        let means = spec.means();
        for i in 0..means.len() {
            for j in (i + 1)..means.len() {
                let dist = trimgame_numerics::stats::euclidean(means[i], means[j]);
                assert!(dist > 5.0, "components {i},{j} too close ({dist})");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let spec = {
            let mut rng = seeded_rng(5);
            GmmSpec::separated(2, 3, 10.0, 1.0, &mut rng)
        };
        let a = spec.generate("a", 50, &mut seeded_rng(9));
        let b = spec.generate("b", 50, &mut seeded_rng(9));
        assert_eq!(a.values(), b.values());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_spec_rejected() {
        let _ = GmmSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "inconsistent component dimension")]
    fn mismatched_dims_rejected() {
        let _ = GmmSpec::new(vec![
            GaussianComponent::spherical(vec![0.0], 1.0, 1.0),
            GaussianComponent::spherical(vec![0.0, 1.0], 1.0, 1.0),
        ]);
    }
}
