//! The five named dataset generators of Table II.
//!
//! | Dataset    | Instances | Features | Clusters |
//! |------------|-----------|----------|----------|
//! | CONTROL    | 600       | 60       | 6        |
//! | VEHICLE    | 752       | 18       | 4        |
//! | LETTER     | 20000     | 16       | 26       |
//! | TAXI       | 1048575   | 1        | 1        |
//! | CREDITCARD | 284807    | 31       | 4        |
//!
//! `CONTROL` follows the *original* UCI synthetic control-chart recipe
//! (Alcock & Manolopoulos), which was itself a synthetic generator, so this
//! one is a faithful re-implementation rather than a substitution. The
//! other four are seeded stand-ins with matching shape and skew
//! (DESIGN.md §3). Large sets take a `scale` divisor so tests and CI can
//! run on reduced instance counts without changing the distributional
//! structure.

use crate::dataset::Dataset;
use crate::synthetic::{GaussianComponent, GmmSpec};
use rand::Rng;
use trimgame_numerics::rand_ext::standard_normal;

/// Identifier for the five Table II datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// UCI synthetic control charts: 600×60, 6 pattern classes.
    Control,
    /// Vehicle silhouettes: 752×18, 4 classes.
    Vehicle,
    /// Letter recognition: 20000×16, 26 classes.
    Letter,
    /// NYC taxi pick-up times: 1,048,575×1, normalized to [−1, 1].
    Taxi,
    /// Credit-card PCA transactions: 284,807×31, heavily skewed, 4 classes.
    Creditcard,
}

impl Shape {
    /// All five shapes in Table II order.
    pub const ALL: [Shape; 5] = [
        Shape::Control,
        Shape::Vehicle,
        Shape::Letter,
        Shape::Taxi,
        Shape::Creditcard,
    ];

    /// Paper instance count (before any scaling).
    #[must_use]
    pub fn paper_instances(self) -> usize {
        match self {
            Shape::Control => 600,
            Shape::Vehicle => 752,
            Shape::Letter => 20_000,
            Shape::Taxi => 1_048_575,
            Shape::Creditcard => 284_807,
        }
    }

    /// Generates the dataset at full paper size.
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(self, rng: &mut R) -> Dataset {
        self.generate_scaled(rng, 1)
    }

    /// Generates the dataset with instance counts divided by `scale`
    /// (minimum sizes keep the class structure intact).
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    #[must_use]
    pub fn generate_scaled<R: Rng + ?Sized>(self, rng: &mut R, scale: usize) -> Dataset {
        assert!(scale > 0, "scale must be positive");
        match self {
            Shape::Control => control(rng),
            Shape::Vehicle => vehicle(rng),
            Shape::Letter => letter(rng, scale),
            Shape::Taxi => taxi(rng, scale),
            Shape::Creditcard => creditcard(rng, scale),
        }
    }
}

/// The six control-chart pattern classes of the UCI generator.
fn control_series<R: Rng + ?Sized>(class: usize, rng: &mut R) -> Vec<f64> {
    const LEN: usize = 60;
    const M: f64 = 30.0;
    const S: f64 = 2.0;
    let mut y = Vec::with_capacity(LEN);
    // Class-specific parameters drawn once per series, per the original
    // generator.
    let a = 10.0 + 5.0 * rng.gen::<f64>(); // cyclic amplitude in [10, 15]
    let period = 10.0 + 5.0 * rng.gen::<f64>(); // cyclic period in [10, 15]
    let g = 0.2 + 0.3 * rng.gen::<f64>(); // trend gradient in [0.2, 0.5]
    let t3 = 20.0 + 20.0 * rng.gen::<f64>(); // shift time in [20, 40]
    let shift = 7.5 + 12.5 * rng.gen::<f64>(); // shift magnitude in [7.5, 20]
    for t in 0..LEN {
        let t = t as f64;
        let r = rng.gen::<f64>() * 6.0 - 3.0; // uniform(-3, 3)
        let base = M + r * S;
        let v = match class {
            0 => base,                                                  // normal
            1 => base + a * (std::f64::consts::TAU * t / period).sin(), // cyclic
            2 => base + g * t,                                          // increasing
            3 => base - g * t,                                          // decreasing
            4 => base + if t >= t3 { shift } else { 0.0 },              // upward shift
            5 => base - if t >= t3 { shift } else { 0.0 },              // downward shift
            _ => unreachable!("control has exactly 6 classes"),
        };
        y.push(v);
    }
    y
}

/// CONTROL: 600 series × 60 points, 6 pattern classes (100 each), following
/// the original UCI synthetic control-chart formulas.
#[must_use]
pub fn control<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    let mut rows = Vec::with_capacity(600);
    let mut labels = Vec::with_capacity(600);
    for class in 0..6 {
        for _ in 0..100 {
            rows.push(control_series(class, rng));
            labels.push(class);
        }
    }
    Dataset::from_rows("control", &rows, Some(labels), 6)
}

/// VEHICLE: 752×18, 4 classes — a separated Gaussian mixture shifted into
/// the positive feature range typical of silhouette moments.
#[must_use]
pub fn vehicle<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    let spec = GmmSpec::separated(4, 18, 9.0, 2.0, rng);
    let mut d = spec.generate("vehicle", 752, rng);
    // Shift all features to be positive (silhouette features are counts
    // and moments); keeps cluster geometry unchanged.
    let shift = 40.0;
    let cols = d.cols();
    let mut data = d.values().to_vec();
    for v in &mut data {
        *v += shift;
    }
    let labels = d.labels().map(<[usize]>::to_vec);
    d = Dataset::new("vehicle", cols, data, labels, 4);
    d
}

/// LETTER: 20000×16 (divided by `scale`, min 520 = 20 per class), 26
/// classes, integer features clamped to the UCI 0–15 range.
#[must_use]
pub fn letter<R: Rng + ?Sized>(rng: &mut R, scale: usize) -> Dataset {
    let n = (20_000 / scale).max(520);
    // Means spread inside [3, 12] so the ±sd spread stays mostly in range.
    let mut components = Vec::with_capacity(26);
    for _ in 0..26 {
        let mean: Vec<f64> = (0..16).map(|_| 3.0 + 9.0 * rng.gen::<f64>()).collect();
        components.push(GaussianComponent::spherical(mean, 1.2, 1.0));
    }
    let spec = GmmSpec::new(components);
    let d = spec.generate("letter", n, rng);
    let labels = d.labels().map(<[usize]>::to_vec);
    let data: Vec<f64> = d
        .values()
        .iter()
        .map(|v| v.round().clamp(0.0, 15.0))
        .collect();
    Dataset::new("letter", 16, data, labels, 26)
}

/// Seconds in a day covered by the taxi data (the paper reports integers in
/// `[0, 86340]`).
const TAXI_MAX_SECONDS: f64 = 86_340.0;

/// TAXI: 1,048,575 pick-up times (divided by `scale`, min 10,000), one
/// feature, normalized to [−1, 1]. A mixture of a morning peak, an evening
/// peak and a uniform base rate approximates the real intra-day profile.
#[must_use]
pub fn taxi<R: Rng + ?Sized>(rng: &mut R, scale: usize) -> Dataset {
    let n = (1_048_575 / scale).max(10_000);
    let mut data = Vec::with_capacity(n);
    let hour = 3_600.0;
    for _ in 0..n {
        let u: f64 = rng.gen();
        let seconds = if u < 0.30 {
            // Morning peak around 08:30.
            8.5 * hour + 1.5 * hour * standard_normal(rng)
        } else if u < 0.65 {
            // Evening peak around 18:30.
            18.5 * hour + 2.0 * hour * standard_normal(rng)
        } else {
            // Uniform base rate across the day.
            rng.gen::<f64>() * TAXI_MAX_SECONDS
        };
        let seconds = seconds.clamp(0.0, TAXI_MAX_SECONDS).round();
        // Normalize to [-1, 1] as the paper does.
        data.push(2.0 * seconds / TAXI_MAX_SECONDS - 1.0);
    }
    Dataset::new("taxi", 1, data, None, 1)
}

/// CREDITCARD: 284,807×31 (divided by `scale`, min 5,000), 4 behavioural
/// classes with the skew structure Fig. 6(b)/Fig. 8 depend on:
/// label 0 = general public (all but 7 rows), label 1 = one fraudulent
/// outlier, label 2 = one premium outlier, label 3 = five "green" points
/// distant from both.
#[must_use]
pub fn creditcard<R: Rng + ?Sized>(rng: &mut R, scale: usize) -> Dataset {
    let n = (284_807 / scale).max(5_000);
    let dim = 31;
    // PCA-like decreasing variances for the bulk.
    let bulk_sd: Vec<f64> = (0..dim).map(|j| 3.0 / ((j + 1) as f64).sqrt()).collect();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);

    let bulk = n - 7;
    for _ in 0..bulk {
        let row: Vec<f64> = bulk_sd.iter().map(|sd| sd * standard_normal(rng)).collect();
        rows.push(row);
        labels.push(0);
    }
    // One fraudulent outlier, far along the first PCA axes.
    let fraud: Vec<f64> = (0..dim)
        .map(|j| {
            if j < 4 {
                60.0
            } else {
                0.5 * standard_normal(rng)
            }
        })
        .collect();
    rows.push(fraud);
    labels.push(1);
    // One premium outlier, far in the opposite direction.
    let premium: Vec<f64> = (0..dim)
        .map(|j| {
            if j < 4 {
                -55.0
            } else {
                0.5 * standard_normal(rng)
            }
        })
        .collect();
    rows.push(premium);
    labels.push(2);
    // Five "green" points: a small coherent class, moderately distant.
    for _ in 0..5 {
        let row: Vec<f64> = (0..dim)
            .map(|j| {
                let base = if j % 2 == 0 { 18.0 } else { -12.0 };
                base + standard_normal(rng)
            })
            .collect();
        rows.push(row);
        labels.push(3);
    }
    Dataset::from_rows("creditcard", &rows, Some(labels), 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;
    use trimgame_numerics::stats::mean;

    #[test]
    fn control_matches_table_ii() {
        let d = control(&mut seeded_rng(1));
        let info = d.info();
        assert_eq!(info.instances, 600);
        assert_eq!(info.features, 60);
        assert_eq!(info.clusters, 6);
        // 100 series per class.
        let labels = d.labels().unwrap();
        for class in 0..6 {
            assert_eq!(labels.iter().filter(|&&l| l == class).count(), 100);
        }
    }

    #[test]
    fn control_classes_have_expected_shapes() {
        let d = control(&mut seeded_rng(2));
        let labels = d.labels().unwrap().to_vec();
        // Increasing trend: last quarter mean far above first quarter mean.
        let inc_rows: Vec<&[f64]> = d
            .iter_rows()
            .zip(&labels)
            .filter(|(_, &l)| l == 2)
            .map(|(r, _)| r)
            .collect();
        for row in inc_rows.iter().take(10) {
            let head = mean(&row[..15]);
            let tail = mean(&row[45..]);
            assert!(tail > head + 5.0, "increasing trend not increasing");
        }
        // Decreasing trend mirrors it.
        let dec_rows: Vec<&[f64]> = d
            .iter_rows()
            .zip(&labels)
            .filter(|(_, &l)| l == 3)
            .map(|(r, _)| r)
            .collect();
        for row in dec_rows.iter().take(10) {
            let head = mean(&row[..15]);
            let tail = mean(&row[45..]);
            assert!(tail < head - 5.0, "decreasing trend not decreasing");
        }
    }

    #[test]
    fn vehicle_matches_table_ii() {
        let d = vehicle(&mut seeded_rng(3));
        let info = d.info();
        assert_eq!(info.instances, 752);
        assert_eq!(info.features, 18);
        assert_eq!(info.clusters, 4);
    }

    #[test]
    fn letter_scaled_shape_and_range() {
        let d = letter(&mut seeded_rng(4), 10);
        assert_eq!(d.rows(), 2_000);
        assert_eq!(d.cols(), 16);
        assert_eq!(d.clusters(), 26);
        for &v in d.values() {
            assert!((0.0..=15.0).contains(&v));
            assert_eq!(v, v.round(), "letter features are integers");
        }
    }

    #[test]
    fn letter_minimum_size_protects_classes() {
        let d = letter(&mut seeded_rng(5), 1_000_000);
        assert_eq!(d.rows(), 520);
    }

    #[test]
    fn taxi_is_normalized_and_bimodal() {
        let d = taxi(&mut seeded_rng(6), 100);
        assert_eq!(d.cols(), 1);
        assert!(d.rows() >= 10_000);
        for &v in d.values() {
            assert!((-1.0..=1.0).contains(&v));
        }
        // Peaks: more mass near 8.5h (x≈-0.29) and 18.5h (x≈0.54) than at 3h (x≈-0.75).
        let density =
            |lo: f64, hi: f64| d.values().iter().filter(|&&v| v >= lo && v < hi).count() as f64;
        let morning = density(-0.35, -0.25);
        let night = density(-0.80, -0.70);
        assert!(morning > 1.5 * night, "morning {morning} vs night {night}");
    }

    #[test]
    fn creditcard_skew_structure() {
        let d = creditcard(&mut seeded_rng(7), 50);
        let labels = d.labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 1);
        assert_eq!(labels.iter().filter(|&&l| l == 2).count(), 1);
        assert_eq!(labels.iter().filter(|&&l| l == 3).count(), 5);
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), d.rows() - 7);
        // Outliers are far from the bulk centroid.
        let centroid = d.centroid();
        let dists = d.distances_to(&centroid);
        let fraud_idx = labels.iter().position(|&l| l == 1).unwrap();
        let bulk_mean_dist = mean(
            &dists
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l == 0)
                .map(|(&x, _)| x)
                .collect::<Vec<_>>(),
        );
        assert!(dists[fraud_idx] > 5.0 * bulk_mean_dist);
    }

    #[test]
    fn shape_enum_dispatches() {
        let mut rng = seeded_rng(8);
        for shape in Shape::ALL {
            let d = shape.generate_scaled(&mut rng, 200);
            assert!(d.rows() > 0);
            assert_eq!(
                d.info().clusters,
                match shape {
                    Shape::Control => 6,
                    Shape::Vehicle => 4,
                    Shape::Letter => 26,
                    Shape::Taxi => 1,
                    Shape::Creditcard => 4,
                }
            );
        }
    }

    #[test]
    fn paper_instances_match_table_ii() {
        assert_eq!(Shape::Control.paper_instances(), 600);
        assert_eq!(Shape::Vehicle.paper_instances(), 752);
        assert_eq!(Shape::Letter.paper_instances(), 20_000);
        assert_eq!(Shape::Taxi.paper_instances(), 1_048_575);
        assert_eq!(Shape::Creditcard.paper_instances(), 284_807);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = vehicle(&mut seeded_rng(42));
        let b = vehicle(&mut seeded_rng(42));
        assert_eq!(a.values(), b.values());
    }
}
