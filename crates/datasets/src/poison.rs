//! Poison-value injection.
//!
//! The paper standardizes injection positions in percentile space
//! (Section VI-A): "the adversary injects poison values at the percentile
//! (T_th − 1%)", "randomly injects poison values in the percentile range
//! [0.9, 1]", or — in the non-equilibrium study — "at the 99th percentile
//! with probability p and at the 90th percentile with probability 1 − p"
//! (the mixed strategy of Section III-C2). [`InjectionPosition`] captures
//! all of these, and [`PoisonSpec::inject`] materializes a combined
//! benign+poison batch with provenance flags so experiments can measure
//! exactly which poison survived trimming.

use rand::Rng;
use trimgame_numerics::quantile::{percentile, Interpolation};

/// Where the adversary places poison values, in percentile space of the
/// benign batch (or as absolute values for bounded LDP domains).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionPosition {
    /// All poison at the benign value at this percentile (`0 ≤ p ≤ 1`).
    Percentile(f64),
    /// Uniformly random percentile in `[lo, hi]` per poison value
    /// (the `Baseline 0.9` adversary uses `[0.9, 1.0]`).
    Range {
        /// Lower percentile bound.
        lo: f64,
        /// Upper percentile bound.
        hi: f64,
    },
    /// Mixed strategy: percentile `hi` with probability `p`, else
    /// percentile `lo` (Table III's evasion knob).
    Mixed {
        /// Probability of the high (equilibrium) position.
        p: f64,
        /// High percentile.
        hi: f64,
        /// Low percentile.
        lo: f64,
    },
    /// An absolute value in the data domain (used in the LDP case study
    /// where the domain is fixed to `[−1, 1]`).
    Value(f64),
}

impl InjectionPosition {
    /// Resolves this position to a concrete value against a benign batch.
    pub fn resolve<R: Rng + ?Sized>(&self, benign: &[f64], rng: &mut R) -> f64 {
        match *self {
            InjectionPosition::Percentile(p) => percentile(benign, p, Interpolation::Linear),
            InjectionPosition::Range { lo, hi } => {
                let p = lo + (hi - lo) * rng.gen::<f64>();
                percentile(benign, p, Interpolation::Linear)
            }
            InjectionPosition::Mixed { p, hi, lo } => {
                let chosen = if rng.gen::<f64>() < p { hi } else { lo };
                percentile(benign, chosen, Interpolation::Linear)
            }
            InjectionPosition::Value(v) => v,
        }
    }

    /// Validates percentile bounds.
    ///
    /// # Panics
    /// Panics if any percentile/probability parameter is outside `[0, 1]`
    /// or a range is inverted.
    pub fn validate(&self) {
        let check = |x: f64, what: &str| {
            assert!((0.0..=1.0).contains(&x), "{what} {x} not in [0,1]");
        };
        match *self {
            InjectionPosition::Percentile(p) => check(p, "percentile"),
            InjectionPosition::Range { lo, hi } => {
                check(lo, "range lo");
                check(hi, "range hi");
                assert!(lo <= hi, "inverted range [{lo}, {hi}]");
            }
            InjectionPosition::Mixed { p, hi, lo } => {
                check(p, "mix probability");
                check(hi, "mixed hi");
                check(lo, "mixed lo");
            }
            InjectionPosition::Value(_) => {}
        }
    }
}

/// A poisoning attack specification: how much poison relative to the benign
/// batch, and where it goes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisonSpec {
    /// Poison count as a fraction of the benign batch size (the paper's
    /// "attack ratio").
    pub ratio: f64,
    /// Placement of the poison values.
    pub position: InjectionPosition,
}

/// A combined benign + poison batch with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonBatch {
    /// All values, benign first then poison (callers that need arrival-order
    /// realism can shuffle; trimming is order-independent).
    pub values: Vec<f64>,
    /// `true` at index `i` iff `values[i]` is poison.
    pub is_poison: Vec<bool>,
}

impl PoisonBatch {
    /// Number of poison values in the batch.
    #[must_use]
    pub fn poison_count(&self) -> usize {
        self.is_poison.iter().filter(|&&b| b).count()
    }

    /// Fraction of the batch that is poison.
    #[must_use]
    pub fn poison_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.poison_count() as f64 / self.values.len() as f64
    }
}

impl PoisonSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    /// Panics if `ratio < 0` or the position parameters are out of range.
    #[must_use]
    pub fn new(ratio: f64, position: InjectionPosition) -> Self {
        assert!(
            ratio >= 0.0,
            "attack ratio must be non-negative, got {ratio}"
        );
        position.validate();
        Self { ratio, position }
    }

    /// Injects poison into a benign batch: `round(ratio · n)` poison values,
    /// each placed per [`InjectionPosition`].
    ///
    /// # Panics
    /// Panics if `benign` is empty and poison placement needs percentiles.
    pub fn inject<R: Rng + ?Sized>(&self, benign: &[f64], rng: &mut R) -> PoisonBatch {
        let mut values = Vec::with_capacity(benign.len());
        let mut is_poison = Vec::with_capacity(benign.len());
        self.inject_into(benign, rng, &mut values, &mut is_poison);
        PoisonBatch { values, is_poison }
    }

    /// [`PoisonSpec::inject`] into caller-owned buffers — the
    /// allocation-free form the engine hot path uses: `values` and
    /// `is_poison` are cleared and refilled (benign first, then poison),
    /// with draws and placements identical to the allocating form.
    ///
    /// # Panics
    /// Panics if `benign` is empty and poison placement needs percentiles.
    pub fn inject_into<R: Rng + ?Sized>(
        &self,
        benign: &[f64],
        rng: &mut R,
        values: &mut Vec<f64>,
        is_poison: &mut Vec<bool>,
    ) {
        let n_poison = (self.ratio * benign.len() as f64).round() as usize;
        values.clear();
        values.reserve(benign.len() + n_poison);
        values.extend_from_slice(benign);
        is_poison.clear();
        is_poison.reserve(benign.len() + n_poison);
        is_poison.resize(benign.len(), false);
        for _ in 0..n_poison {
            values.push(self.position.resolve(benign, rng));
            is_poison.push(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgame_numerics::rand_ext::seeded_rng;

    fn benign() -> Vec<f64> {
        (0..1000).map(|i| i as f64).collect()
    }

    #[test]
    fn percentile_injection_places_at_quantile() {
        let mut rng = seeded_rng(1);
        let spec = PoisonSpec::new(0.1, InjectionPosition::Percentile(0.99));
        let batch = spec.inject(&benign(), &mut rng);
        assert_eq!(batch.poison_count(), 100);
        let expected = percentile(&benign(), 0.99, Interpolation::Linear);
        for (v, &p) in batch.values.iter().zip(&batch.is_poison) {
            if p {
                assert!((v - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn range_injection_stays_in_band() {
        let mut rng = seeded_rng(2);
        let spec = PoisonSpec::new(0.2, InjectionPosition::Range { lo: 0.9, hi: 1.0 });
        let data = benign();
        let batch = spec.inject(&data, &mut rng);
        let lo_val = percentile(&data, 0.9, Interpolation::Linear);
        let hi_val = percentile(&data, 1.0, Interpolation::Linear);
        for (v, &p) in batch.values.iter().zip(&batch.is_poison) {
            if p {
                assert!(*v >= lo_val - 1e-9 && *v <= hi_val + 1e-9);
            }
        }
    }

    #[test]
    fn mixed_injection_hits_both_positions() {
        let mut rng = seeded_rng(3);
        let spec = PoisonSpec::new(
            1.0,
            InjectionPosition::Mixed {
                p: 0.5,
                hi: 0.99,
                lo: 0.90,
            },
        );
        let data = benign();
        let batch = spec.inject(&data, &mut rng);
        let hi_val = percentile(&data, 0.99, Interpolation::Linear);
        let lo_val = percentile(&data, 0.90, Interpolation::Linear);
        let mut hi_count = 0;
        let mut lo_count = 0;
        for (v, &p) in batch.values.iter().zip(&batch.is_poison) {
            if p {
                if (v - hi_val).abs() < 1e-9 {
                    hi_count += 1;
                } else if (v - lo_val).abs() < 1e-9 {
                    lo_count += 1;
                } else {
                    panic!("poison at unexpected value {v}");
                }
            }
        }
        assert_eq!(hi_count + lo_count, 1000);
        // ~50/50 split.
        assert!((hi_count as f64 / 1000.0 - 0.5).abs() < 0.06);
    }

    #[test]
    fn value_injection_is_absolute() {
        let mut rng = seeded_rng(4);
        let spec = PoisonSpec::new(0.05, InjectionPosition::Value(1.0));
        let batch = spec.inject(&benign(), &mut rng);
        for (v, &p) in batch.values.iter().zip(&batch.is_poison) {
            if p {
                assert_eq!(*v, 1.0);
            }
        }
    }

    #[test]
    fn zero_ratio_adds_nothing() {
        let mut rng = seeded_rng(5);
        let spec = PoisonSpec::new(0.0, InjectionPosition::Percentile(0.99));
        let batch = spec.inject(&benign(), &mut rng);
        assert_eq!(batch.poison_count(), 0);
        assert_eq!(batch.values.len(), 1000);
        assert_eq!(batch.poison_fraction(), 0.0);
    }

    #[test]
    fn poison_fraction_accounts_for_combined_size() {
        let mut rng = seeded_rng(6);
        let spec = PoisonSpec::new(0.25, InjectionPosition::Percentile(0.5));
        let batch = spec.inject(&benign(), &mut rng);
        // 250 poison over 1250 total = 0.2.
        assert!((batch.poison_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ratio_rejected() {
        let _ = PoisonSpec::new(-0.1, InjectionPosition::Percentile(0.5));
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn bad_percentile_rejected() {
        let _ = PoisonSpec::new(0.1, InjectionPosition::Percentile(1.5));
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn inverted_range_rejected() {
        let _ = PoisonSpec::new(0.1, InjectionPosition::Range { lo: 0.9, hi: 0.5 });
    }

    #[test]
    fn benign_values_preserved_in_order() {
        let mut rng = seeded_rng(7);
        let data = benign();
        let spec = PoisonSpec::new(0.1, InjectionPosition::Percentile(0.9));
        let batch = spec.inject(&data, &mut rng);
        assert_eq!(&batch.values[..1000], &data[..]);
        assert!(batch.is_poison[..1000].iter().all(|&b| !b));
    }
}
