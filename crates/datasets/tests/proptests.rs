//! Property-based tests for the dataset substrate.

use proptest::prelude::*;
use trimgame_datasets::poison::{InjectionPosition, PoisonSpec};
use trimgame_datasets::stream::RoundStream;
use trimgame_datasets::Dataset;
use trimgame_numerics::rand_ext::seeded_rng;

proptest! {
    #[test]
    fn inject_poison_count_matches_ratio(
        n in 10_usize..500,
        ratio in 0.0_f64..0.6,
        p in 0.0_f64..1.0,
        seed in any::<u64>(),
    ) {
        let benign: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let spec = PoisonSpec::new(ratio, InjectionPosition::Percentile(p));
        let batch = spec.inject(&benign, &mut seeded_rng(seed));
        let expected = (ratio * n as f64).round() as usize;
        prop_assert_eq!(batch.poison_count(), expected);
        prop_assert_eq!(batch.values.len(), n + expected);
    }

    #[test]
    fn injected_poison_within_benign_range_for_percentile_modes(
        n in 10_usize..300,
        ratio in 0.01_f64..0.5,
        lo in 0.0_f64..0.5,
        width in 0.0_f64..0.5,
        seed in any::<u64>(),
    ) {
        let benign: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 100.0).collect();
        let bmin = benign.iter().copied().fold(f64::INFINITY, f64::min);
        let bmax = benign.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let spec = PoisonSpec::new(ratio, InjectionPosition::Range { lo, hi: lo + width });
        let batch = spec.inject(&benign, &mut seeded_rng(seed));
        for (v, &is_p) in batch.values.iter().zip(&batch.is_poison) {
            if is_p {
                prop_assert!(*v >= bmin - 1e-9 && *v <= bmax + 1e-9);
            }
        }
    }

    #[test]
    fn mixed_strategy_extremes_are_pure(
        n in 50_usize..200,
        seed in any::<u64>(),
    ) {
        let benign: Vec<f64> = (0..n).map(|i| i as f64).collect();
        // p = 1 behaves like pure hi injection; p = 0 like pure lo.
        for (p, pct) in [(1.0, 0.99), (0.0, 0.90)] {
            let mixed = PoisonSpec::new(0.5, InjectionPosition::Mixed { p, hi: 0.99, lo: 0.90 });
            let pure = PoisonSpec::new(0.5, InjectionPosition::Percentile(pct));
            let a = mixed.inject(&benign, &mut seeded_rng(seed));
            let b = pure.inject(&benign, &mut seeded_rng(seed));
            prop_assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn round_stream_draws_from_pool(
        pool in prop::collection::vec(-1e3_f64..1e3, 1..100),
        batch in 1_usize..64,
        seed in any::<u64>(),
    ) {
        let mut s = RoundStream::new(pool.clone(), batch);
        let round = s.next_round(&mut seeded_rng(seed));
        prop_assert_eq!(round.len(), batch);
        for v in round {
            prop_assert!(pool.contains(&v));
        }
    }

    #[test]
    fn dataset_filter_preserves_row_content(
        rows in prop::collection::vec(prop::collection::vec(-10.0_f64..10.0, 3), 1..40),
        mask_seed in any::<u64>(),
    ) {
        let d = Dataset::from_rows("p", &rows, None, 1);
        let mut rng = seeded_rng(mask_seed);
        let mask: Vec<bool> = (0..d.rows()).map(|_| rand::Rng::gen::<bool>(&mut rng)).collect();
        let kept = d.filter(&mask);
        prop_assert_eq!(kept.rows(), mask.iter().filter(|&&b| b).count());
        let mut j = 0;
        for (i, &keep) in mask.iter().enumerate() {
            if keep {
                prop_assert_eq!(kept.row(j), d.row(i));
                j += 1;
            }
        }
    }

    #[test]
    fn normalize_columns_bounds(
        rows in prop::collection::vec(prop::collection::vec(-100.0_f64..100.0, 2), 2..50),
    ) {
        let mut d = Dataset::from_rows("n", &rows, None, 1);
        d.normalize_columns(-1.0, 1.0);
        for row in d.iter_rows() {
            for &v in row {
                prop_assert!((-1.0..=1.0).contains(&v), "value {v} out of range");
            }
        }
    }
}
