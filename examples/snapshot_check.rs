//! Prints seeded fingerprints of the three simulators.
//!
//! All three run through the unified `Engine<S: Scenario>`; this binary's
//! output is the cross-refactor contract that fixed-seed trajectories stay
//! bit-identical. Capture it before touching the engine or a scenario
//! (`cargo run --release --example snapshot_check > before.txt`), diff it
//! after — any drift means the RNG call order or the round arithmetic
//! changed.

use trimgame::core::ldp_sim::{run_ldp_collection, LdpDefense, LdpSimConfig};
use trimgame::core::ml_sim::{collect_poisoned, MlSimConfig};
use trimgame::core::simulation::{run_game, GameConfig, Scheme};
use trimgame::datasets::synthetic::{GaussianComponent, GmmSpec};
use trimgame::numerics::rand_ext::seeded_rng;

fn main() {
    let pool: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect();
    for scheme in Scheme::roster() {
        let mut cfg = GameConfig::new(scheme);
        cfg.seed = 1234;
        let r = run_game(&pool, &cfg);
        let kept_sum: f64 = r.retained.iter().sum();
        println!(
            "scalar {} ua={:.12} uc={:.12} kept={} sum={:.6} term={:?} thr={:.12} inj={:.12}",
            scheme.name(),
            r.utilities.u_a.last().unwrap(),
            r.utilities.u_c.last().unwrap(),
            r.retained.len(),
            kept_sum,
            r.termination_round,
            r.thresholds.iter().sum::<f64>(),
            r.injections.iter().sum::<f64>(),
        );
    }
    let spec = GmmSpec::new(vec![
        GaussianComponent::spherical(vec![-8.0, 0.0], 1.0, 1.0),
        GaussianComponent::spherical(vec![8.0, 0.0], 1.0, 1.0),
    ]);
    let data = spec.generate("blobs", 600, &mut seeded_rng(5));
    for scheme in [Scheme::Ostrich, Scheme::TitForTat, Scheme::Elastic(0.5)] {
        let set = collect_poisoned(&data, &MlSimConfig::new(scheme, 0.9, 0.3, 77));
        let sum: f64 = set.retained.values().iter().sum();
        println!(
            "ml {} rows={} sum={:.6} ps={} pr={} bt={}",
            scheme.name(),
            set.retained.rows(),
            sum,
            set.poison_survived,
            set.poison_received,
            set.benign_trimmed
        );
    }
    let popn: Vec<f64> = (0..4_000)
        .map(|i| (2.0 * ((i % 1000) as f64 / 1000.0) - 1.0) * 0.7)
        .collect();
    for defense in LdpDefense::roster() {
        let cfg = LdpSimConfig {
            users_per_round: 800,
            rounds: 4,
            ..LdpSimConfig::new(2.0, 0.2, 31)
        };
        let est = run_ldp_collection(&popn, defense, &cfg);
        println!("ldp {} est={:.15}", defense.name(), est);
    }
}
