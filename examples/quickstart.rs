//! Quickstart: one interactive trimming game, round by round.
//!
//! Plays the paper's Elastic (k = 0.5) scheme against its coupled
//! adaptive adversary on a synthetic value stream, and prints the
//! per-round positions so you can watch the coupled dynamics converge to
//! the analytic fixed point.
//!
//! Run with: `cargo run --release --example quickstart`

use trimgame::core::elastic::CoupledDynamics;
use trimgame::core::simulation::{run_game, GameConfig, Scheme};

fn main() {
    // A benign population: values 0.0 .. 99.9 (percentile space is what
    // matters; any 1-D pool works).
    let pool: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64 / 10.0).collect();

    let mut config = GameConfig::new(Scheme::Elastic(0.5));
    config.attack_ratio = 0.2;
    config.rounds = 15;

    let result = run_game(&pool, &config);

    println!("Interactive trimming game — Elastic k=0.5, Tth=0.9, attack ratio 0.2");
    println!();
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "round", "trim T(i)", "inject A(i)", "poison in", "survived", "quality"
    );
    for (i, o) in result.outcomes.iter().enumerate() {
        println!(
            "{:>5} {:>12.4} {:>12.4} {:>10} {:>10} {:>9.4}",
            o.round,
            result.thresholds[i],
            result.injections[i],
            o.poison_received,
            o.poison_survived,
            o.quality,
        );
    }

    let dynamics = CoupledDynamics::new(config.tth, 0.5).expect("valid parameters");
    let fp = dynamics.fixed_point();
    println!();
    println!(
        "analytic fixed point: T* = {:.4}, A* = {:.4} (|A* - Tth| = {:.4})",
        fp.trim,
        fp.inject,
        dynamics.equilibrium_injection_offset()
    );
    println!(
        "surviving poison fraction: {:.4}  |  benign trim overhead: {:.4}",
        result.surviving_poison_fraction(),
        result.benign_trim_fraction()
    );
    println!();
    println!(
        "Interpretation: the adversary is pushed {:.1} percentiles below the",
        (config.tth - result.injections.last().unwrap()) * 100.0
    );
    println!("nominal threshold — its poison survives, but in a harmless position.");
}
