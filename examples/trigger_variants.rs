//! Trigger-strategy variants under LDP noise — the paper's future-work
//! extension (Section V), implemented.
//!
//! Compares plain Tit-for-tat, Tit-for-two-tats and Generous Tit-for-tat
//! on the same problem the redundancy margin was invented for: a
//! non-deterministic (LDP-noisy) quality signal that occasionally looks
//! like a defection even when everyone cooperates.
//!
//! Run with: `cargo run --release --example trigger_variants`

use rand::Rng;
use trimgame::core::titfortat::{survival_probability, TitForTat};
use trimgame::core::variants::{GenerousTitForTat, TitForTwoTats, TriggerVariant};
use trimgame::ldp::mechanism::LdpMechanism;
use trimgame::ldp::piecewise::Piecewise;
use trimgame::numerics::quantile::{ecdf, percentile, Interpolation};
use trimgame::numerics::rand_ext::{derive_seed, seeded_rng};

fn main() {
    let epsilon = 2.0;
    let rounds = 40;
    let users = 400;
    let reps = 200;
    let mech = Piecewise::new(epsilon);
    let population: Vec<f64> = (0..2_000)
        .map(|i| ((i % 500) as f64 / 250.0 - 1.0) * 0.6)
        .collect();

    println!("Cooperative survival under LDP jitter (eps={epsilon}, {rounds} rounds, {reps} reps)");
    println!("All parties honest — every termination below is a FALSE trigger.\n");
    println!(
        "{:<28} {:>16} {:>18}",
        "strategy", "survival rate", "avg false trigger"
    );

    let mut survived = [0usize; 4];
    let mut trigger_round = [0.0f64; 4];
    for rep in 0..reps {
        let mut rng = seeded_rng(derive_seed(11, rep));
        // Calibration.
        let calib: Vec<f64> = (0..users)
            .map(|i| mech.privatize(population[i % population.len()], &mut rng))
            .collect();
        let ref_value = percentile(&calib, 0.95, Interpolation::Linear);

        let mut tft_strict = TitForTat::new(0.95, 0.85, 1.0, 0.0).expect("valid");
        let mut tft_red = TitForTat::new(0.95, 0.85, 1.0, 0.03).expect("valid");
        let mut two_tats = TitForTwoTats::new(0.95, 0.85, 1.0, 0.0, 1).expect("valid");
        let mut generous = GenerousTitForTat::new(0.95, 0.85, 1.0, 0.0, 0.7).expect("valid");

        for round in 1..=rounds {
            let reports: Vec<f64> = (0..users)
                .map(|_| {
                    let idx = rng.gen_range(0..population.len());
                    mech.privatize(population[idx], &mut rng)
                })
                .collect();
            let above = 1.0 - ecdf(&reports, ref_value);
            let quality = 1.0 - (above - 0.05).max(0.0);
            let _ = tft_strict.observe(round, quality);
            let _ = tft_red.observe(round, quality);
            let _ = two_tats.observe(round, quality);
            let _ = generous.observe_with(round, quality, &mut rng);
        }
        let outcomes = [
            tft_strict.triggered_at(),
            tft_red.triggered_at(),
            two_tats.triggered_at(),
            generous.triggered_at(),
        ];
        for (i, t) in outcomes.iter().enumerate() {
            match t {
                None => survived[i] += 1,
                Some(r) => trigger_round[i] += *r as f64,
            }
        }
    }

    let names = [
        "Titfortat (Red=0)",
        "Titfortat (Red=0.03)",
        "Tit-for-two-tats",
        "Generous TFT (g=0.7)",
    ];
    for (i, name) in names.iter().enumerate() {
        let fails = reps as usize - survived[i];
        let avg = if fails > 0 {
            format!("{:.1}", trigger_round[i] / fails as f64)
        } else {
            "--".to_string()
        };
        println!(
            "{:<28} {:>15.1}% {:>18}",
            name,
            survived[i] as f64 / reps as f64 * 100.0,
            avg
        );
    }

    println!();
    println!("Theory: with per-round false-positive probability q, plain");
    println!("Tit-for-tat survives N rounds w.p. (1-q)^N — e.g. q=5%, N=40:");
    println!(
        "survival {:.1}% — 'the probability of termination keeps increasing",
        survival_probability(0.05, 40) * 100.0
    );
    println!("and will ultimately converge to 1 in the long run' (Section V-B),");
    println!("which is exactly why the paper introduces the Elastic strategy.");
}
