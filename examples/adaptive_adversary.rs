//! Non-equilibrium play: what does an adversary gain by deviating from
//! the Stackelberg equilibrium? (a miniature of the paper's Table III plus
//! the Theorem 3 compliance analysis).
//!
//! Sweeps the mixed-strategy parameter `p` (99th percentile w.p. `p`, 90th
//! w.p. `1 − p`) against Tit-for-tat and Elastic, then prints Theorem 3's
//! compliance margin across detection probabilities.
//!
//! Run with: `cargo run --release --example adaptive_adversary`

use trimgame::core::simulation::run_table3_point;
use trimgame::core::titfortat::compliance_margin;
use trimgame::datasets::shapes::control;
use trimgame::numerics::rand_ext::seeded_rng;

fn main() {
    // Scalar projection of Control: its centroid distances (the quantity
    // the trimming game plays on for multi-dimensional data).
    let data = control(&mut seeded_rng(5));
    let pool = trimgame::datasets::percentile::centroid_distances(&data);

    println!("Table III miniature — Control, attack ratio 0.2, 20 rounds, 5 reps");
    println!();
    println!(
        "{:>5} {:>18} {:>14} {:>12}",
        "p", "avg termination", "Titfortat", "Elastic"
    );
    for i in 0..=10 {
        let p = i as f64 / 10.0;
        let row = run_table3_point(&pool, p, 0.5, 5, 1234);
        println!(
            "{:>5.1} {:>18.2} {:>14.5} {:>12.5}",
            row.p, row.avg_termination, row.titfortat_fraction, row.elastic_fraction
        );
    }

    println!();
    println!("Theorem 3: largest per-round compromise delta the collector can");
    println!("grant while keeping compliance rational (g_ac = 1, discount d):");
    println!();
    print!("{:<8}", "d \\ p");
    for p10 in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
        print!(" {:>8.2}", p10);
    }
    println!();
    for d in [0.5, 0.8, 0.9, 0.95, 0.99] {
        print!("{:<8.2}", d);
        for p in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            print!(" {:>8.4}", compliance_margin(d, p, 1.0));
        }
        println!();
    }
    println!();
    println!("p is the probability a defection goes undetected: at p = 1 the");
    println!("margin collapses to zero (defection is free), and patient");
    println!("adversaries (d near 1) tolerate the largest compromises.");
}
