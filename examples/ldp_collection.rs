//! Privacy-preserving collection under manipulation attack (a miniature of
//! the paper's Fig. 9).
//!
//! Honest users privatize Taxi-like pick-up times with the Piecewise
//! Mechanism; input-manipulation attackers report counterfeit maxima
//! through the same protocol (fully deniable). The trimming strategies and
//! the EMF baseline then estimate the population mean; the table shows MSE
//! across privacy budgets.
//!
//! Run with: `cargo run --release --example ldp_collection`

use trimgame::core::ldp_sim::{ldp_mse, LdpDefense, LdpSimConfig};
use trimgame::datasets::shapes::taxi;
use trimgame::numerics::rand_ext::seeded_rng;

fn main() {
    // Scaled-down Taxi (1-D pick-up seconds normalized to [-1, 1]).
    let data = taxi(&mut seeded_rng(99), 100);
    let population: Vec<f64> = data.values().to_vec();
    println!(
        "Population: {} taxi pick-up times in [-1, 1], true mean {:.4}",
        population.len(),
        trimgame::numerics::stats::mean(&population)
    );

    let attack_ratio = 0.2;
    let reps = 5;
    println!("Attack: input manipulation at +1.0, ratio {attack_ratio}, {reps} reps\n");

    let epsilons = [1.0, 2.0, 3.0, 4.0, 5.0];
    print!("{:<12}", "defense");
    for eps in epsilons {
        print!(" {:>10}", format!("eps={eps}"));
    }
    println!();

    for defense in LdpDefense::roster() {
        print!("{:<12}", defense.name());
        for eps in epsilons {
            let mut cfg = LdpSimConfig::new(eps, attack_ratio, 31);
            cfg.users_per_round = 1_000;
            cfg.rounds = 5;
            let mse = ldp_mse(&population, defense, &cfg, reps);
            print!(" {:>10.5}", mse);
        }
        println!();
    }

    println!();
    println!("Expected shape (paper Fig. 9): EMF cannot separate deniable");
    println!("input manipulation and stays worst; the trimming strategies");
    println!("improve with epsilon (less noise => cleaner trimming).");
}
