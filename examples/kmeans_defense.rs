//! Defending k-means clustering against online poisoning (a miniature of
//! the paper's Fig. 4 row for the Control dataset).
//!
//! Collects the synthetic-control dataset over 20 rounds under each of the
//! six schemes at a heavy attack ratio, then fits k-means on what each
//! scheme retained and reports SSE and the centroid displacement from the
//! clean ground truth.
//!
//! Run with: `cargo run --release --example kmeans_defense`

use trimgame::core::ml_sim::{collect_poisoned, kmeans_metrics, MlSimConfig};
use trimgame::core::simulation::Scheme;
use trimgame::datasets::shapes::control;
use trimgame::numerics::rand_ext::seeded_rng;

fn main() {
    let data = control(&mut seeded_rng(2024));
    println!(
        "Dataset: {} ({} rows × {} features, {} clusters)",
        data.name(),
        data.rows(),
        data.cols(),
        data.clusters()
    );

    let tth = 0.9;
    let ratio = 0.35;
    println!("Tth = {tth}, attack ratio = {ratio}, 20 rounds\n");
    println!(
        "{:<16} {:>12} {:>12} {:>14} {:>12}",
        "scheme", "SSE", "distance", "poison kept", "benign lost"
    );

    let reps = 5;
    for scheme in Scheme::roster() {
        let mut sse_sum = 0.0;
        let mut dist_sum = 0.0;
        let mut poison_sum = 0.0;
        let mut lost_sum = 0.0;
        for rep in 0..reps {
            let seed = trimgame::numerics::rand_ext::derive_seed(7, rep);
            let cfg = MlSimConfig::new(scheme, tth, ratio, seed);
            let collected = collect_poisoned(&data, &cfg);
            let (sse, distance) = kmeans_metrics(&collected, &data);
            sse_sum += sse;
            dist_sum += distance;
            poison_sum += collected.surviving_poison_fraction();
            lost_sum += collected.benign_trimmed as f64
                / (collected.benign_trimmed + collected.retained.rows() - collected.poison_survived)
                    as f64;
        }
        let n = reps as f64;
        println!(
            "{:<16} {:>12.1} {:>12.3} {:>13.1}% {:>11.1}%",
            scheme.name(),
            sse_sum / n,
            dist_sum / n,
            poison_sum / n * 100.0,
            lost_sum / n * 100.0,
        );
    }

    println!();
    println!("Expected shape (paper Fig. 4g–i): Ostrich's SSE is the worst at");
    println!("heavy attack; the game-theoretic schemes push poison to lower,");
    println!("less damaging positions, with Elastic 0.5 the strongest on SSE.");
}
