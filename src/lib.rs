//! # trimgame
//!
//! A from-scratch Rust implementation of **"Interactive Trimming against
//! Evasive Online Data Manipulation Attacks: A Game-Theoretic Approach"**
//! (Fu, Ye, Du, Hu — ICDE 2024, arXiv:2403.10313).
//!
//! Online data collection is a repeated game: a collector trims each
//! round's batch at a percentile threshold, and a colluding, white-box,
//! *evasive* adversary places poison values to maximize damage while
//! dodging the cut. This workspace implements the paper's full stack:
//!
//! * the game model — payoffs, the complete strategy space `[x_L, x_R]`,
//!   the one-shot ultimatum game (Table I) and the Stackelberg view;
//! * the analytical model — least action, Euler–Lagrange machinery, the
//!   free equilibrium Lagrangian (Theorems 1–2) and the coupled-oscillator
//!   non-equilibrium Lagrangian (Definition 2, Theorem 4);
//! * the two derived defender strategies — **Tit-for-tat** (Algorithm 1,
//!   Theorem 3) and **Elastic** (Algorithm 2);
//! * every substrate the evaluation needs — dataset generators matching
//!   Table II, k-means / SVM / SOM learners, an LDP pipeline (Duchi,
//!   Piecewise, Laplace mechanisms; manipulation attacks; the EMF
//!   baseline), and a streaming collection engine with a public board;
//! * one unified simulation core — `core::engine::Engine<S: Scenario>`
//!   drives the Fig. 3 round loop for the scalar, ML and LDP workloads
//!   alike, on an allocation-free trimming hot path
//!   (`stream::trim::TrimScratch`), with a parallel sweep runner in
//!   `trimgame-bench` fanning seeded game grids across threads.
//!
//! ## Quickstart
//!
//! ```
//! use trimgame::core::simulation::{run_game, GameConfig, Scheme};
//! use trimgame::numerics::rand_ext::{seeded_rng, NormalSampler};
//!
//! // A clean value pool (the benign population), drawn from a seeded
//! // RNG so this quickstart is reproducible bit-for-bit.
//! let mut rng = seeded_rng(2024);
//! let sampler = NormalSampler::new(50.0, 12.0);
//! let pool: Vec<f64> = (0..10_000).map(|_| sampler.sample(&mut rng)).collect();
//!
//! // Play 20 rounds of the Elastic (k = 0.5) scheme against its
//! // coupled adaptive adversary; the game itself is seeded too.
//! let mut config = GameConfig::new(Scheme::Elastic(0.5));
//! config.seed = 42;
//! let result = run_game(&pool, &config);
//!
//! // The coupled dynamics converge: poison ends up deep below the
//! // nominal threshold where it is nearly harmless.
//! let last_injection = *result.injections.last().unwrap();
//! assert!(last_injection < 0.87);
//! println!(
//!     "surviving poison fraction: {:.3}",
//!     result.surviving_poison_fraction()
//! );
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `trim-core` | the game: payoffs, Table I, Tit-for-tat, Elastic, equilibria, simulations |
//! | [`datasets`] | `trimgame-datasets` | Table II dataset generators, streams, poison injectors |
//! | [`ml`] | `trimgame-ml` | k-means, linear SVM, SOM, confusion/PPV/FDR metrics |
//! | [`ldp`] | `trimgame-ldp` | LDP mechanisms, manipulation attacks, EM filter |
//! | [`stream`] | `trimgame-stream` | public board, collector pipeline, trimming ops, quality |
//! | [`numerics`] | `trimgame-numerics` | quantiles, stats, RK4, Lagrangians, variational checks |

pub use trim_core as core;
pub use trimgame_datasets as datasets;
pub use trimgame_ldp as ldp;
pub use trimgame_ml as ml;
pub use trimgame_numerics as numerics;
pub use trimgame_stream as stream;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _space = crate::core::space::StrategySpace::new(0.9, 0.99).unwrap();
        let _sampler = crate::numerics::rand_ext::seeded_rng(1);
        assert!(!crate::VERSION.is_empty());
    }
}
