//! Distributions: [`Standard`] primitives and unbiased uniform ranges.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for primitives: uniform over `[0, 1)` for
/// floats, uniform over the full domain for integers, fair for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform on [0, 1) with full precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1_u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1_u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(
            impl Distribution<$ty> for Standard {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$method() as $ty
                }
            }
        )+
    };
}

standard_int!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

pub mod uniform {
    //! Uniform sampling from ranges, mirroring `rand::distributions::uniform`.

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Draws a `u64` uniformly from `[0, span)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = rng.next_u64();
            let m = u128::from(x) * u128::from(span);
            #[allow(clippy::cast_possible_truncation)]
            let low = m as u64;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Types with a uniform-sampling implementation over ranges.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Samples uniformly from `[low, high)` (`inclusive = false`) or
        /// `[low, high]` (`inclusive = true`).
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    macro_rules! uniform_int {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl SampleUniform for $ty {
                    #[allow(
                        clippy::cast_possible_truncation,
                        clippy::cast_possible_wrap,
                        clippy::cast_sign_loss
                    )]
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        inclusive: bool,
                    ) -> Self {
                        if inclusive {
                            assert!(low <= high, "empty range");
                        } else {
                            assert!(low < high, "empty range");
                        }
                        // Width in the unsigned domain; wrapping_sub handles
                        // signed types via two's complement.
                        let span = (high as u64).wrapping_sub(low as u64);
                        let span = if inclusive { span.wrapping_add(1) } else { span };
                        if span == 0 {
                            // Inclusive range covering the whole domain.
                            return rng.next_u64() as $ty;
                        }
                        low.wrapping_add(uniform_below(rng, span) as $ty)
                    }
                }
            )+
        };
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($ty:ty),+ $(,)?) => {
            $(
                impl SampleUniform for $ty {
                    fn sample_uniform<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        inclusive: bool,
                    ) -> Self {
                        if inclusive {
                            assert!(low <= high, "empty range");
                            // [0, 1] with the closed upper bound reachable.
                            let unit = (rng.next_u64() >> 11) as $ty
                                * (1.0 / ((1_u64 << 53) - 1) as $ty);
                            return low + (high - low) * unit;
                        }
                        assert!(low < high, "empty range");
                        let unit = (rng.next_u64() >> 11) as $ty
                            * (1.0 / (1_u64 << 53) as $ty);
                        // May round up to `high` for extreme spans; clamp to
                        // keep the documented half-open contract.
                        let v = low + (high - low) * unit;
                        if v < high { v } else { <$ty>::max(low, high - (high - low) * <$ty>::EPSILON) }
                    }
                }
            )+
        };
    }

    uniform_float!(f32, f64);

    /// Ranges that can be sampled from, as accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from `self`.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(rng, *self.start(), *self.end(), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v: i32 = (-5..5).sample_single(&mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn full_domain_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(2);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0_u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10_usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn single_value_inclusive_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(7..=7_usize), 7);
        }
    }

    #[test]
    fn degenerate_inclusive_float_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(0.5_f64..=0.5), 0.5);
        }
    }

    #[test]
    fn inclusive_float_range_stays_in_closed_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
