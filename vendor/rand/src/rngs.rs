//! Concrete generators: [`StdRng`] (xoshiro256++) and the [`SplitMix64`]
//! seed expander.

use crate::{RngCore, SeedableRng};

/// The SplitMix64 generator, used to expand 64-bit seeds into full state.
///
/// This is the scheme `rand` documents for [`SeedableRng::seed_from_u64`]:
/// it guarantees that nearby seeds produce well-separated states.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream starting from `state`.
    #[must_use]
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's standard deterministic generator.
///
/// Backed by xoshiro256++ (Blackman & Vigna), a small, fast generator
/// with a 2²⁵⁶−1 period that passes the usual statistical batteries —
/// more than adequate for simulation workloads. Unlike the upstream
/// `StdRng` it makes an explicit stability promise: the output stream
/// for a given seed will never change, which the workspace's seeded
/// experiments and doctests rely on.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(s: [u64; 4]) -> Self {
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            Self {
                s: [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ],
            }
        } else {
            Self { s }
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0_u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::from_state(s)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs of the public-domain splitmix64.c (Vigna),
        // cross-computed with an independent implementation. Any change
        // to a constant or shift breaks every seeded stream in the
        // workspace, so these are pinned exactly.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);

        let mut sm = SplitMix64::new(1_234_567);
        assert_eq!(sm.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(sm.next_u64(), 0x2C73_F084_5854_0FA5);
        assert_eq!(sm.next_u64(), 0x883E_BCE5_A3F2_7C77);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }

    #[test]
    fn u32_uses_high_bits() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }
}
