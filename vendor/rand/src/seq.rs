//! Sequence helpers: the `SliceRandom` subset (`choose`, `shuffle`).

use crate::distributions::uniform::SampleRange;
use crate::RngCore;

/// Random helpers on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get((0..self.len()).sample_single(rng))
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, (0..=i).sample_single(rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_none_on_empty() {
        let empty: [u8; 0] = [];
        let mut rng = StdRng::seed_from_u64(0);
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
