//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds without network access to a registry, so the
//! external dependencies named in `[workspace.dependencies]` are vendored
//! as small, real implementations rather than fetched. This crate provides
//! the slice of the `rand 0.8` API the workspace actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] with `gen`, `gen_range`,
//!   `gen_bool`, and `sample`;
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`), matching the reproducibility contract
//!   the workspace relies on (same seed ⇒ same stream);
//! * the [`distributions::Standard`] unit-interval / primitive-integer
//!   distribution and Lemire-style unbiased integer ranges.
//!
//! It intentionally implements no OS entropy source: every generator in
//! the workspace is explicitly seeded for reproducibility.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a 64-bit seed by expanding it with
    /// SplitMix64 (the scheme `rand` documents for `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }

    /// Samples a value from `distr`.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..7_usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_reaches_upper_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let hit_top = (0..2_000).any(|_| rng.gen_range(0..=3_usize) == 3);
        assert!(hit_top);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
