//! Offline stand-in for the `criterion` crate.
//!
//! The workspace vendors its external dependencies because builds must work
//! without registry access. This harness keeps `criterion`'s call-site API
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `bench_with_input`, [`black_box`]) and performs a
//! simple but honest wall-clock measurement:
//!
//! 1. warm up for the configured warm-up window (default 100 ms);
//! 2. calibrate an iteration count that fills the measurement window
//!    (default 400 ms);
//! 3. run that many iterations in timed batches and report the mean,
//!    minimum and maximum time per iteration.
//!
//! Measurement windows can be tuned with the `TRIMGAME_BENCH_WARMUP_MS` and
//! `TRIMGAME_BENCH_MEASURE_MS` environment variables. There is no
//! statistical machinery (outlier rejection, bootstrap confidence
//! intervals); numbers are indicative, meant for tracking order-of-magnitude
//! regressions between commits on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus an input parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id labelled `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    report: Option<Report>,
}

/// One benchmark's measured timings.
#[derive(Debug, Clone, Copy)]
struct Report {
    iterations: u64,
    mean: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the per-iteration cost for calibration.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Calibrate a batch size so each timed batch is ~1/10 of the
        // measurement window, bounded to keep pathological cases sane.
        let batch =
            ((self.measure.as_secs_f64() / 10.0 / per_iter).ceil() as u64).clamp(1, 1 << 20);

        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        while total < self.measure {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            total += elapsed;
            iterations += batch;
            let per = elapsed / u32::try_from(batch).unwrap_or(u32::MAX);
            min = min.min(per);
            max = max.max(per);
        }
        self.report = Some(Report {
            iterations,
            mean: total / u32::try_from(iterations).unwrap_or(u32::MAX),
            min,
            max,
        });
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: env_ms("TRIMGAME_BENCH_WARMUP_MS", 100),
            measure: env_ms("TRIMGAME_BENCH_MEASURE_MS", 400),
        }
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_ms)
        .max(1);
    Duration::from_millis(ms)
}

fn run_one(warm_up: Duration, measure: Duration, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up,
        measure,
        report: None,
    };
    f(&mut bencher);
    match bencher.report {
        Some(r) => println!(
            "{id:<40} time: [{} {} {}]  ({} iters)",
            fmt_duration(r.min),
            fmt_duration(r.mean),
            fmt_duration(r.max),
            r.iterations,
        ),
        None => println!("{id:<40} (no measurement: closure never called iter)"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.warm_up, self.measure, &id.into().id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            self.criterion.warm_up,
            self.criterion.measure,
            &full,
            &mut f,
        );
        self
    }

    /// Runs a named benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            self.criterion.warm_up,
            self.criterion.measure,
            &full,
            &mut |b| {
                f(b, input);
            },
        );
        self
    }

    /// Ends the group (kept for API compatibility; groups hold no state).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in `criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as in `criterion`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut called = false;
        fast_criterion().bench_function("noop", |b| {
            called = true;
            b.iter(|| 1 + 1);
        });
        assert!(called);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut seen = 0;
        let mut criterion = fast_criterion();
        let mut group = criterion.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 3), &vec![1, 2, 3], |b, v| {
            seen = v.len();
            b.iter(|| v.iter().sum::<i32>());
        });
        group.finish();
        assert_eq!(seen, 3);
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        assert_eq!(BenchmarkId::new("exact", 1000).to_string(), "exact/1000");
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
    }
}
