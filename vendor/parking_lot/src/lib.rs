//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace vendors its external dependencies because builds must
//! succeed without network access to a registry. This crate wraps the
//! standard-library locks with `parking_lot`'s signature differences:
//! `lock`/`read`/`write` return guards directly (no `Result`), and a
//! poisoned lock is treated as still usable — `parking_lot` locks cannot
//! be poisoned, so recovering the inner guard preserves those semantics.

use std::sync::{self, LockResult};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// An RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// An RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// An RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn rwlock_write_is_exclusive() {
        let l = RwLock::new(0);
        {
            let mut w = l.write();
            *w = 5;
            assert!(l.try_read().is_none());
        }
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn locks_survive_a_panicked_holder() {
        let l = Arc::new(Mutex::new(3));
        let held = Arc::clone(&l);
        let _ = thread::spawn(move || {
            let _guard = held.lock();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*l.lock(), 3);
    }
}
