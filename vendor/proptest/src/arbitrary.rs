//! The [`any`] strategy: full-domain generation for primitives.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )+
    };
}

arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Finite full-range doubles (±1e12): the suites assert arithmetic
    /// properties that are vacuous for NaN/∞, matching how they use `any`.
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1e12_f64..1e12)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`'s full domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u64_spans_high_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        let strategy = any::<u64>();
        let high = (0..64).any(|_| strategy.generate(&mut rng) > u64::MAX / 2);
        assert!(high);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        let strategy = any::<f64>();
        for _ in 0..1000 {
            assert!(strategy.generate(&mut rng).is_finite());
        }
    }
}
