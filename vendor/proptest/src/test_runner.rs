//! The case-execution loop behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default number of cases per property, chosen to keep the workspace's
/// full property suite fast; override with `PROPTEST_CASES`.
pub const DEFAULT_CASES: u32 = 48;

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a, used to derive a stable per-test master seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Runs `test` for the configured number of cases.
///
/// Case `i` of test `name` always sees the same RNG stream (derived from
/// `PROPTEST_SEED` when set, else from a hash of `name`), so failures are
/// reproducible from the message alone.
///
/// # Panics
/// Panics — failing the enclosing `#[test]` — on the first case whose
/// closure returns an error.
pub fn run<F>(name: &str, mut test: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases = env_u64("PROPTEST_CASES").map_or(DEFAULT_CASES, |n| {
        u32::try_from(n.max(1)).unwrap_or(u32::MAX)
    });
    let master = env_u64("PROPTEST_SEED").unwrap_or_else(|| fnv1a(name.as_bytes()));
    for case in 0..cases {
        let mut rng =
            StdRng::seed_from_u64(master ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(err) = test(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{cases} \
                 (master seed {master:#x}; rerun with PROPTEST_SEED={master}): {err}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        use rand::Rng;
        let mut first: Vec<u64> = Vec::new();
        run("determinism_probe", |rng| {
            first.push(rng.gen());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        run("determinism_probe", |rng| {
            second.push(rng.gen());
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), DEFAULT_CASES as usize);
    }

    #[test]
    fn different_names_get_different_streams() {
        use rand::Rng;
        let mut a: Vec<u64> = Vec::new();
        run("stream_a", |rng| {
            a.push(rng.gen());
            Ok(())
        });
        let mut b: Vec<u64> = Vec::new();
        run("stream_b", |rng| {
            b.push(rng.gen());
            Ok(())
        });
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "rerun with PROPTEST_SEED=")]
    fn failure_reports_reproduction_seed() {
        run("doomed", |_| Err(TestCaseError::fail("boom")));
    }
}
