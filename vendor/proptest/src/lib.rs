//! Offline stand-in for the `proptest` crate.
//!
//! The workspace vendors its external dependencies because builds must work
//! without registry access. This crate keeps `proptest`'s call-site API for
//! the subset the workspace's property suites use — the [`proptest!`] macro,
//! range/[`any`](arbitrary::any)/collection strategies,
//! `prop_flat_map`/`prop_map`, and the
//! `prop_assert*` macros — on top of a deliberately simple runner:
//!
//! * each `#[test]` runs `PROPTEST_CASES` random cases (default 48, chosen
//!   so the full workspace property suite stays well under two minutes);
//! * case seeds derive deterministically from the test name, so runs are
//!   reproducible by default and never flake; set `PROPTEST_SEED` to
//!   explore a different portion of the input space;
//! * there is **no shrinking** — a failing case reports its case index and
//!   master seed instead of a minimized input.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface expected at `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access to strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines a block of property tests.
///
/// Each function runs [`test_runner::run`] over its strategies; generated
/// values bind to the patterns on the left of `in`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strategy),
                            __proptest_rng,
                        );
                    )+
                    #[allow(unreachable_code, clippy::redundant_closure_call)]
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    __proptest_result
                });
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case when its inputs miss a precondition.
///
/// The simple runner treats a discarded case as passing (a fresh case is
/// not redrawn), which keeps case counts predictable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0_u64..1000, b in 0_u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0.0_f64..1.0, 3..10),
        ) {
            prop_assert!((3..10).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "element {x} out of range");
            }
        }

        #[test]
        fn flat_map_chains_strategies(
            v in (1_usize..5).prop_flat_map(|n| prop::collection::vec(0_i32..10, n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn just_yields_its_value(x in Just(41)) {
            prop_assert_eq!(x + 1, 42);
        }

        #[test]
        fn any_u64_is_deterministic_per_case(seed in any::<u64>()) {
            // The value itself is arbitrary; determinism of the harness is
            // covered by the runner test below. Here we only require that
            // generation succeeds across the full domain.
            let _ = seed;
        }

        #[test]
        fn mut_patterns_bind(mut v in prop::collection::vec(0_i32..5, 1..4)) {
            v.push(99);
            prop_assert_eq!(*v.last().unwrap(), 99);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run("always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope".to_owned()))
        });
    }
}
