//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG to a value of its
//! associated type. Ranges of primitives, [`Just`], mapped/flat-mapped
//! strategies and tuples of strategies are supported — the surface the
//! workspace's property suites use.

use rand::distributions::uniform::SampleUniform;
use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Returns a strategy applying `f` to each generated value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Returns a strategy feeding each generated value into `f` to obtain
    /// the strategy that produces the final value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Returns a strategy that redraws until `predicate` accepts the value.
    ///
    /// # Panics
    /// Panics (failing the test) if 1000 consecutive draws are rejected.
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

// Strategies compose by reference too (the `proptest!` macro generates by
// reference so user strategies need not be `Copy`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (10_usize..20).generate(&mut r);
            assert!((10..20).contains(&x));
            let y = (-1.5_f64..2.5).generate(&mut r);
            assert!((-1.5..2.5).contains(&y));
        }
    }

    #[test]
    fn map_applies_function() {
        let doubled = (1_u32..5).prop_map(|x| x * 2);
        let mut r = rng();
        for _ in 0..100 {
            let v = doubled.generate(&mut r);
            assert_eq!(v % 2, 0);
            assert!((2..10).contains(&v));
        }
    }

    #[test]
    fn filter_respects_predicate() {
        let evens = (0_u32..100).prop_filter("even", |x| x % 2 == 0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(evens.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let s = (0_u32..10, 0.0_f64..1.0);
        let mut r = rng();
        let (a, b) = s.generate(&mut r);
        assert!(a < 10);
        assert!((0.0..1.0).contains(&b));
    }
}
