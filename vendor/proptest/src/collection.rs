//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: either exact or a
/// uniformly drawn size from a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut StdRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            lo: range.start,
            hi_exclusive: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        Self {
            lo: *range.start(),
            hi_exclusive: range.end() + 1,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// comes from `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_size_is_exact() {
        let s = vec(0_u32..10, 4);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng).len(), 4);
        }
    }

    #[test]
    fn ranged_size_spans_the_range() {
        let s = vec(0_u32..10, 1..5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let len = s.generate(&mut rng).len();
            assert!((1..5).contains(&len));
            seen[len - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn nested_vecs_compose() {
        let s = vec(vec(0.0_f64..1.0, 3), 2..4);
        let mut rng = StdRng::seed_from_u64(2);
        let m = s.generate(&mut rng);
        assert!((2..4).contains(&m.len()));
        assert!(m.iter().all(|row| row.len() == 3));
    }
}
