//! Numeric verification of the paper's analytical results (Theorems 1–4)
//! through the public API.

use trimgame::core::elastic::CoupledDynamics;
use trimgame::core::lagrange::{
    fit_constant_velocity, is_constant_velocity, oscillation_metrics, UtilityTrajectory,
};
use trimgame::core::matrix::{Move, UltimatumPayoffs};
use trimgame::core::simulation::{run_game, GameConfig, Scheme};
use trimgame::core::titfortat::{compliance_margin, compliant_gain, defector_gain};
use trimgame::numerics::lagrangian::{CoupledOscillatorLagrangian, FreeLagrangian};
use trimgame::numerics::ode::rk4_integrate;
use trimgame::numerics::oscillator::CoupledOscillator;
use trimgame::numerics::rand_ext::seeded_rng;
use trimgame::numerics::variational::{action_of_perturbed, discrete_action, max_residual};

/// Theorem 1: at a Stackelberg equilibrium the cumulative utilities grow
/// at constant rates. We run the Elastic game to convergence and check
/// the post-transient utility series for linearity.
#[test]
fn theorem1_equilibrium_velocities_are_constant() {
    let pool: Vec<f64> = (0..20_000).map(|i| (i % 2000) as f64).collect();
    let mut cfg = GameConfig::new(Scheme::Elastic(0.5));
    cfg.rounds = 60;
    cfg.batch = 2_000;
    let result = run_game(&pool, &cfg);
    // Discard the transient (the coupled dynamics converge geometrically;
    // 20 rounds is far past the k=0.5 time constant).
    let steady_a: Vec<f64> = result.utilities.u_a[20..].to_vec();
    let steady_c: Vec<f64> = result.utilities.u_c[20..].to_vec();
    assert!(
        is_constant_velocity(&steady_a, 0.05),
        "adversary utility not linear after convergence"
    );
    assert!(
        is_constant_velocity(&steady_c, 0.05),
        "collector utility not linear after convergence"
    );
    // Velocities are the equilibrium roundwise gains.
    let (va, _, _) = fit_constant_velocity(&steady_a);
    assert!(
        va > 0.0,
        "adversary gains at equilibrium (poison survives low)"
    );
    let (vc, _, _) = fit_constant_velocity(&steady_c);
    assert!(vc < 0.0, "collector pays at equilibrium");
}

/// Theorem 2: the equilibrium Lagrangian is the free kinetic form; true
/// equilibrium trajectories have vanishing Euler–Lagrange residuals and
/// minimize the discrete action among perturbed paths.
#[test]
fn theorem2_equilibrium_lagrangian_is_free_and_minimal() {
    // Constant-velocity trajectories (the Theorem 1 conclusion).
    let gains_a = vec![0.4; 80];
    let gains_c = vec![-0.6; 80];
    let traj = UtilityTrajectory::from_roundwise(&gains_a, &gains_c);
    let free = FreeLagrangian::new(vec![1.0, 1.0]);
    let t = traj.to_trajectory();
    assert!(max_residual(&free, &t) < 1e-9);

    // Least action: the linear path beats endpoint-fixed perturbations.
    let s_true = discrete_action(&free, &t.q, 0.0, 1.0);
    let mut rng = seeded_rng(42);
    for _ in 0..25 {
        let (s_pert, _) = action_of_perturbed(&free, &t.q, 0.0, 1.0, 0.5, &mut rng);
        assert!(s_pert >= s_true - 1e-9);
    }
}

/// Theorem 3: the compliance condition δ < (d − dp)/(1 − dp)·g_ac is
/// exactly the comparison of the discounted gain streams (Eqs. 10–11).
#[test]
fn theorem3_compliance_condition_matches_gain_streams() {
    let g_ac = 2.5;
    for d in [0.3, 0.6, 0.9, 0.97] {
        for p in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let margin = compliance_margin(d, p, g_ac);
            // At the margin the two streams are equal (within float noise).
            let g_com = compliant_gain(g_ac - margin, d);
            let g_def = defector_gain(g_ac, d, p);
            assert!(
                (g_com - g_def).abs() < 1e-9,
                "margin not the indifference point at d={d}, p={p}"
            );
        }
    }
}

/// Theorem 4: with the Elastic interaction the relative utility
/// oscillates periodically; closed form, RK4 and the oscillation detector
/// all agree on the period.
#[test]
fn theorem4_elastic_relative_utility_oscillates() {
    let (ma, mc, k) = (1.0, 1.0, 0.8);
    let lag = CoupledOscillatorLagrangian::new(ma, mc, k);
    let h = 0.05;
    let traj = rk4_integrate(&lag, 0.0, &[1.5, -0.5], &[0.0, 0.0], h, 4_000);
    let relative: Vec<f64> = traj.q.iter().map(|q| q[0] - q[1]).collect();

    let osc = CoupledOscillator::new(ma, mc, k, 1.5, -0.5, 0.0, 0.0);
    let metrics = oscillation_metrics(&relative);
    assert!(metrics.zero_crossings >= 20);
    // Empirical half period (in samples) vs closed form.
    let half_period_samples = osc.period() / 2.0 / h;
    assert!(
        (metrics.mean_crossing_gap - half_period_samples).abs() < 0.1 * half_period_samples,
        "measured {} vs closed form {}",
        metrics.mean_crossing_gap,
        half_period_samples
    );
    // Amplitude matches |w0| = 2.0 (started at rest).
    assert!((metrics.amplitude - 2.0).abs() < 0.05);
}

/// Table I: the one-shot game has the prisoner's-dilemma structure — a
/// unique mutually-hard equilibrium Pareto-dominated by mutual softness.
#[test]
fn table1_oneshot_game_structure() {
    let m = UltimatumPayoffs::default_paper().matrix();
    assert_eq!(m.pure_nash_equilibria(), vec![(Move::Hard, Move::Hard)]);
    assert!(m.pareto_dominates((Move::Soft, Move::Soft), (Move::Hard, Move::Hard)));
}

/// The Elastic fixed point derived in closed form is the limit of the
/// simulated coupled game.
#[test]
fn elastic_game_converges_to_analytic_fixed_point() {
    let pool: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64).collect();
    for k in [0.1, 0.5] {
        let mut cfg = GameConfig::new(Scheme::Elastic(k));
        cfg.rounds = 60;
        let result = run_game(&pool, &cfg);
        let dynamics = CoupledDynamics::new(cfg.tth, k).unwrap();
        let fp = dynamics.fixed_point();
        let last_t = *result.thresholds.last().unwrap();
        let last_a = *result.injections.last().unwrap();
        assert!(
            (last_t - fp.trim).abs() < 1e-6,
            "k={k}: trim {last_t} vs {}",
            fp.trim
        );
        assert!(
            (last_a - fp.inject).abs() < 1e-6,
            "k={k}: inject {last_a} vs {}",
            fp.inject
        );
    }
}
