//! Cross-scheme ordering tests: the qualitative claims of the paper's
//! evaluation (who wins where) must hold in this implementation.

use trimgame::core::ldp_sim::{ldp_mse, LdpDefense, LdpSimConfig};
use trimgame::core::ml_sim::{collect_poisoned, kmeans_metrics, MlSimConfig};
use trimgame::core::simulation::{run_game, run_table3_point, GameConfig, Scheme};
use trimgame::datasets::shapes::{control, taxi};
use trimgame::numerics::rand_ext::{derive_seed, seeded_rng};

fn averaged_distance(data: &trimgame::datasets::Dataset, scheme: Scheme, ratio: f64) -> f64 {
    let reps = 3;
    let mut total = 0.0;
    for rep in 0..reps {
        let cfg = MlSimConfig {
            rounds: 8,
            batch: 120,
            ..MlSimConfig::new(scheme, 0.9, ratio, derive_seed(91, rep))
        };
        let collected = collect_poisoned(data, &cfg);
        let (_, d) = kmeans_metrics(&collected, data);
        total += d;
    }
    total / reps as f64
}

/// Fig. 4 large-ratio regime: the game-theoretic schemes beat Ostrich on
/// centroid fidelity when poison is heavy.
#[test]
fn heavy_attack_defended_schemes_beat_ostrich() {
    let data = control(&mut seeded_rng(31));
    let ostrich = averaged_distance(&data, Scheme::Ostrich, 0.4);
    let elastic = averaged_distance(&data, Scheme::Elastic(0.5), 0.4);
    let tft = averaged_distance(&data, Scheme::TitForTat, 0.4);
    assert!(
        elastic < ostrich,
        "Elastic0.5 {elastic} should beat Ostrich {ostrich} at ratio 0.4"
    );
    assert!(
        tft < ostrich,
        "Titfortat {tft} should beat Ostrich {ostrich} at ratio 0.4"
    );
}

/// Fig. 4 tiny-ratio regime: with almost no poison, Ostrich pays no
/// trimming overhead and is competitive (the crossover the paper shows).
#[test]
fn tiny_attack_ostrich_is_competitive() {
    let data = control(&mut seeded_rng(37));
    let ostrich = averaged_distance(&data, Scheme::Ostrich, 0.005);
    let baseline = averaged_distance(&data, Scheme::Baseline09, 0.005);
    // Ostrich must not lose badly when there is nothing to trim: allow a
    // generous factor but require the same order of magnitude.
    assert!(
        ostrich < 3.0 * baseline + 20.0,
        "Ostrich {ostrich} should be competitive with Baseline0.9 {baseline} at ratio 0.005"
    );
}

/// The ideal static attack evades the static defense (Baseline static
/// keeps nearly all its poison) while Elastic pushes the injections far
/// below the nominal threshold.
#[test]
fn static_defense_is_evaded_elastic_adapts() {
    let pool: Vec<f64> = (0..10_000).map(|i| (i % 1000) as f64).collect();
    let static_cfg = GameConfig::new(Scheme::BaselineStatic);
    let static_result = run_game(&pool, &static_cfg);
    assert!(
        static_result.surviving_poison_fraction() > 0.12,
        "static defense should be evaded"
    );

    let elastic_cfg = GameConfig::new(Scheme::Elastic(0.5));
    let elastic_result = run_game(&pool, &elastic_cfg);
    // Baseline static's poison sits at Tth − 1%; Elastic drives it ~4.3
    // percentiles below Tth — materially weaker poison.
    let static_pos = *static_result.injections.last().unwrap();
    let elastic_pos = *elastic_result.injections.last().unwrap();
    assert!(
        elastic_pos < static_pos - 0.02,
        "elastic should push poison lower: {elastic_pos} vs {static_pos}"
    );
}

/// Table III: deviating from the rational strategy only loses utility —
/// surviving poison decreases as the adversary defects more often.
#[test]
fn table3_defection_loses_utility() {
    let data = control(&mut seeded_rng(41));
    let pool = trimgame::datasets::percentile::centroid_distances(&data);
    let low_defect = run_table3_point(&pool, 0.1, 0.5, 4, 7);
    let high_defect = run_table3_point(&pool, 0.9, 0.5, 4, 7);
    assert!(
        high_defect.titfortat_fraction < low_defect.titfortat_fraction,
        "more defection must retain less poison (titfortat): {} vs {}",
        high_defect.titfortat_fraction,
        low_defect.titfortat_fraction
    );
    assert!(
        high_defect.elastic_fraction < low_defect.elastic_fraction,
        "more defection must retain less poison (elastic)"
    );
    // Heavier defection also terminates cooperation sooner.
    assert!(high_defect.avg_termination <= low_defect.avg_termination);
}

/// Fig. 9 at moderate ε: adaptive trimming beats the EM filter against
/// deniable input manipulation.
#[test]
fn fig9_trimming_beats_emf_at_moderate_epsilon() {
    let data = taxi(&mut seeded_rng(43), 256);
    let population: Vec<f64> = data.values().to_vec();
    let cfg = LdpSimConfig {
        users_per_round: 1_000,
        rounds: 5,
        ..LdpSimConfig::new(3.0, 0.25, 53)
    };
    let trim_mse = ldp_mse(&population, LdpDefense::Elastic(0.5), &cfg, 3);
    let emf_mse = ldp_mse(&population, LdpDefense::Emf, &cfg, 3);
    assert!(
        trim_mse < emf_mse,
        "Elastic {trim_mse} should beat EMF {emf_mse} at eps=3"
    );
}
