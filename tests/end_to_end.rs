//! Integration tests spanning the whole workspace: dataset generation →
//! online collection game → learners → metrics.

use trimgame::core::ml_sim::{collect_poisoned, kmeans_metrics, svm_accuracy, MlSimConfig};
use trimgame::core::simulation::{run_game, GameConfig, Scheme};
use trimgame::datasets::shapes::{control, taxi, Shape};
use trimgame::ml::metrics::ConfusionMatrix;
use trimgame::ml::svm::{SvmConfig, SvmModel};
use trimgame::numerics::rand_ext::seeded_rng;
use trimgame::numerics::stats::mean;

#[test]
fn control_dataset_through_full_kmeans_pipeline() {
    let data = control(&mut seeded_rng(1));
    let cfg = MlSimConfig {
        rounds: 6,
        batch: 120,
        ..MlSimConfig::new(Scheme::Elastic(0.5), 0.9, 0.3, 2)
    };
    let collected = collect_poisoned(&data, &cfg);
    assert!(collected.retained.rows() > 500);
    let (sse, distance) = kmeans_metrics(&collected, &data);
    assert!(sse.is_finite() && sse > 0.0);
    assert!(distance.is_finite() && distance >= 0.0);
}

#[test]
fn every_table_ii_shape_supports_the_scalar_game() {
    let mut rng = seeded_rng(4);
    for shape in Shape::ALL {
        let data = shape.generate_scaled(&mut rng, 512);
        // Project to the scalar game: 1-D sets use values, others use
        // centroid distances.
        let pool = if data.cols() == 1 {
            data.values().to_vec()
        } else {
            trimgame::datasets::percentile::centroid_distances(&data)
        };
        let mut cfg = GameConfig::new(Scheme::TitForTat);
        cfg.rounds = 4;
        cfg.batch = 100;
        let result = run_game(&pool, &cfg);
        assert_eq!(result.outcomes.len(), 4, "shape {shape:?}");
    }
}

#[test]
fn svm_pipeline_on_poisoned_control_stays_reasonable() {
    let data = control(&mut seeded_rng(5));
    // Clean reference accuracy.
    let clean_model = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(6));
    let clean_acc = clean_model.accuracy(&data);
    assert!(clean_acc > 0.85, "clean accuracy {clean_acc}");

    // Defended collection at a heavy ratio keeps accuracy near clean.
    let cfg = MlSimConfig {
        rounds: 6,
        batch: 120,
        ..MlSimConfig::new(Scheme::TitForTat, 0.95, 0.4, 7)
    };
    let collected = collect_poisoned(&data, &cfg);
    let defended_acc = svm_accuracy(&collected, &data, 8);
    assert!(
        defended_acc > clean_acc - 0.15,
        "defended accuracy {defended_acc} vs clean {clean_acc}"
    );
}

#[test]
fn confusion_matrix_from_svm_predictions() {
    let data = control(&mut seeded_rng(9));
    let model = SvmModel::fit(&data, SvmConfig::default(), &mut seeded_rng(10));
    let predictions = model.predict_all(&data);
    let cm = ConfusionMatrix::from_predictions(data.labels().unwrap(), &predictions, 6);
    assert_eq!(cm.classes(), 6);
    assert!(cm.accuracy() > 0.85);
    // PPV row renders for the Fig. 6a-style chart.
    assert_eq!(cm.ppv_row().len(), 6);
}

#[test]
fn taxi_population_statistics_are_stable() {
    let data = taxi(&mut seeded_rng(11), 128);
    let m = mean(data.values());
    // Two rush-hour peaks around +0.1 on the normalized clock.
    assert!(m > -0.2 && m < 0.4, "taxi mean {m}");
    assert!(data.values().iter().all(|v| (-1.0..=1.0).contains(v)));
}

#[test]
fn game_results_expose_cross_crate_invariants() {
    let pool: Vec<f64> = (0..5_000).map(|i| (i % 500) as f64).collect();
    for scheme in Scheme::roster() {
        let mut cfg = GameConfig::new(scheme);
        cfg.rounds = 6;
        cfg.batch = 250;
        let r = run_game(&pool, &cfg);
        // Thresholds/injections recorded per round.
        assert_eq!(r.thresholds.len(), 6);
        assert_eq!(r.injections.len(), 6);
        // Utilities cumulative and consistent with outcome count.
        assert_eq!(r.utilities.rounds(), 6);
        // Retained values equal the per-round kept concatenation.
        let total_kept: usize = r.outcomes.iter().map(|o| o.kept.len()).sum();
        assert_eq!(r.retained.len(), total_kept);
    }
}
